//! Minimizes a failing case to the smallest still-failing reproduction.
//!
//! A randomly derived failing seed carries noise: faults that fired but
//! didn't matter, a bigger plan than the bug needs, more nodes than the
//! race requires. Before a case enters the bug base it is shrunk —
//! ddmin-style chunk removal over the schedule, numeric fault-field
//! reduction ("advance" ordinals toward zero), duplicate merging, knob
//! reduction (scale factor, node count, repair time, random-DAG budget),
//! and a final single-event pass that leaves the schedule **1-minimal**:
//! removing any one remaining event makes the failure disappear.
//!
//! Acceptance is *same-failure*, not any-failure: a candidate counts
//! only if its primary diagnostic code matches the original's, so a
//! shrink can never silently walk from an FT302 divergence to an
//! unrelated FT303 panic. The whole procedure is deterministic — same
//! case in, same minimal case out — which the shrinker's own proptests
//! assert.

use ftpde_analysis::prelude::{Code, Report, Severity};
use ftpde_sim::prelude::{FaultEvent, FaultSchedule};
use serde::{Deserialize, Serialize};

use crate::case::SimCase;
use crate::runner::run_case;
use crate::workload::{QueryKind, SCALE_FACTORS};

/// The failure a report is "about": its first `Error`-severity code, in
/// oracle order (plan lint before panic before conformance before
/// divergence). `None` for clean or warn-only reports.
pub fn primary_code(report: &Report) -> Option<Code> {
    report.diagnostics.iter().find(|d| d.severity == Severity::Error).map(|d| d.code)
}

/// A minimized reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shrunk {
    /// The minimal still-failing case.
    pub case: SimCase,
    /// The failure it reproduces.
    pub code: Code,
    /// Event count before shrinking.
    pub original_events: usize,
    /// Oracle invocations spent.
    pub tested: u32,
}

/// Minimizes `events` against `still_fails`, which must hold for the
/// input. Pure and engine-agnostic — the proptests drive it with
/// synthetic oracles. The result is 1-minimal with respect to single
/// event removal, and the procedure is deterministic.
pub fn shrink_schedule(
    events: &[FaultEvent],
    still_fails: &mut impl FnMut(&[FaultEvent]) -> bool,
) -> Vec<FaultEvent> {
    let mut cur = events.to_vec();

    // Phase 1: ddmin-style chunk removal, halving chunk sizes.
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand = cur.clone();
            cand.drain(i..end);
            if still_fails(&cand) {
                cur = cand;
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Phase 2: advance numeric fault fields toward their minimum.
    for i in 0..cur.len() {
        for replacement in advance_candidates(cur[i]) {
            let mut cand = cur.clone();
            cand[i] = replacement;
            if still_fails(&cand) {
                cur = cand;
            }
        }
    }

    // Phase 3: merge exact duplicates.
    let deduped = FaultSchedule { events: cur.clone() }.dedup().events;
    if deduped.len() < cur.len() && still_fails(&deduped) {
        cur = deduped;
    }

    // Phase 4: single-event removals to fixpoint — the 1-minimality
    // guarantee.
    single_removal_fixpoint(&mut cur, still_fails);
    cur
}

/// Smaller-valued variants of one event, most aggressive first.
fn advance_candidates(event: FaultEvent) -> Vec<FaultEvent> {
    match event {
        FaultEvent::KillNode { stage, node, attempt } if attempt > 0 => {
            vec![FaultEvent::KillNode { stage, node, attempt: 0 }]
        }
        FaultEvent::CorruptRead { op, node, nth_get } if nth_get > 0 => {
            vec![FaultEvent::CorruptRead { op, node, nth_get: 0 }]
        }
        FaultEvent::DelayIo { op, node, virtual_ms, uses } if virtual_ms > 1 || uses > 1 => {
            vec![
                FaultEvent::DelayIo { op, node, virtual_ms: 1, uses: 1 },
                FaultEvent::DelayIo { op, node, virtual_ms: 1, uses },
                FaultEvent::DelayIo { op, node, virtual_ms, uses: 1 },
            ]
        }
        _ => Vec::new(),
    }
}

/// Removes single events until no single removal still fails.
fn single_removal_fixpoint(
    cur: &mut Vec<FaultEvent>,
    still_fails: &mut impl FnMut(&[FaultEvent]) -> bool,
) {
    let mut i = 0;
    while i < cur.len() {
        let mut cand = cur.clone();
        cand.remove(i);
        if still_fails(&cand) {
            *cur = cand;
            i = 0; // earlier removals may have become viable
        } else {
            i += 1;
        }
    }
}

/// Shrinks a failing case end-to-end against the real runner. Returns
/// `None` when the case does not fail (nothing to shrink).
pub fn shrink_case(case: &SimCase) -> Option<Shrunk> {
    let code = primary_code(&run_case(case).report)?;
    let mut tested = 0u32;
    let mut oracle = |cand: &SimCase| {
        tested += 1;
        primary_code(&run_case(cand).report) == Some(code)
    };

    let original_events = case.schedule.len();
    let mut cur = case.clone();

    // Schedule first: fewer events means every later knob probe is
    // cheaper to judge.
    let events = {
        let base = cur.clone();
        let mut f = |events: &[FaultEvent]| {
            let mut cand = base.clone();
            cand.schedule = FaultSchedule { events: events.to_vec() };
            oracle(&cand)
        };
        shrink_schedule(&cur.schedule.events, &mut f)
    };
    cur.schedule = FaultSchedule { events };

    // Knob ladder, smallest first; each accepted knob shrinks the next
    // probe's search space too.
    for sf in SCALE_FACTORS {
        if sf < cur.workload.sf {
            let mut cand = cur.clone();
            cand.workload.sf = sf;
            if oracle(&cand) {
                cur = cand;
                break;
            }
        }
    }
    for nodes in 2..cur.workload.nodes {
        let mut cand = cur.clone();
        cand.workload.nodes = nodes;
        if oracle(&cand) {
            cur = cand;
            break;
        }
    }
    if cur.workload.repair_ms > 0 {
        let mut cand = cur.clone();
        cand.workload.repair_ms = 0;
        if oracle(&cand) {
            cur = cand;
        }
    }
    if let QueryKind::Random { dag_seed, budget } = cur.workload.query {
        for smaller in 1..budget {
            let mut cand = cur.clone();
            cand.workload.query = QueryKind::Random { dag_seed, budget: smaller };
            if oracle(&cand) {
                cur = cand;
                break;
            }
        }
    }

    // Knob changes can strand events (e.g. faults aimed at a dropped
    // node); one more single-removal pass restores 1-minimality.
    let events = {
        let base = cur.clone();
        let mut f = |events: &[FaultEvent]| {
            let mut cand = base.clone();
            cand.schedule = FaultSchedule { events: events.to_vec() };
            oracle(&cand)
        };
        let mut events = cur.schedule.events.clone();
        single_removal_fixpoint(&mut events, &mut f);
        events
    };
    cur.schedule = FaultSchedule { events };

    Some(Shrunk { case: cur, code, original_events, tested })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kill(stage: u32) -> FaultEvent {
        FaultEvent::KillNode { stage, node: 0, attempt: 0 }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let events = vec![kill(1), kill(2), kill(3), kill(4), kill(5)];
        let mut oracle =
            |s: &[FaultEvent]| s.contains(&FaultEvent::KillNode { stage: 3, node: 0, attempt: 0 });
        let shrunk = shrink_schedule(&events, &mut oracle);
        assert_eq!(shrunk, vec![kill(3)]);
    }

    #[test]
    fn advances_ordinals_toward_zero() {
        let events = vec![FaultEvent::CorruptRead { op: 2, node: 1, nth_get: 2 }];
        let mut oracle =
            |s: &[FaultEvent]| s.iter().any(|e| matches!(e, FaultEvent::CorruptRead { op: 2, .. }));
        let shrunk = shrink_schedule(&events, &mut oracle);
        assert_eq!(shrunk, vec![FaultEvent::CorruptRead { op: 2, node: 1, nth_get: 0 }]);
    }

    #[test]
    fn empty_result_when_the_workload_alone_fails() {
        let events = vec![kill(1), kill(2)];
        let mut oracle = |_: &[FaultEvent]| true;
        assert!(shrink_schedule(&events, &mut oracle).is_empty());
    }

    #[test]
    fn result_is_one_minimal() {
        // Failure requires at least two torn writes, any two.
        let events: Vec<FaultEvent> =
            (0..6).map(|op| FaultEvent::TornWrite { op, node: 0 }).collect();
        let mut oracle = |s: &[FaultEvent]| s.iter().filter(|e| e.is_store_fault()).count() >= 2;
        let shrunk = shrink_schedule(&events, &mut oracle);
        assert_eq!(shrunk.len(), 2, "{shrunk:?}");
        for i in 0..shrunk.len() {
            let mut cand = shrunk.clone();
            cand.remove(i);
            assert!(!oracle(&cand), "not 1-minimal at {i}: {shrunk:?}");
        }
    }

    #[test]
    fn primary_code_is_the_first_error() {
        use ftpde_analysis::prelude::{Diagnostic, Severity};
        let mut r = Report::new("t");
        assert_eq!(primary_code(&r), None);
        r.push(Diagnostic::new(Code::FT304, Severity::Warn, "w"));
        assert_eq!(primary_code(&r), None);
        r.push(Diagnostic::new(Code::FT302, Severity::Error, "e1"));
        r.push(Diagnostic::new(Code::FT301, Severity::Error, "e2"));
        assert_eq!(primary_code(&r), Some(Code::FT302));
    }
}
