//! Executes a [`SimCase`] against the real engine and judges the outcome.
//!
//! The runner is a pipeline of oracles, each mapping to a diagnostic
//! code in the unified registry:
//!
//! 1. **FT0xx** — the plan linter validates the workload's DAG and
//!    materialization configuration before anything runs; a workload the
//!    linter rejects never reaches the engine.
//! 2. **Reference run** — the same workload, no faults. Its result is
//!    ground truth for the divergence oracle.
//! 3. **Faulted run** — the schedule's kills go through the engine's
//!    [`FailureInjector`] interrupt path, its storage faults through the
//!    [`FaultStore`] decorator, under `catch_unwind`: a panic anywhere in
//!    the engine is **FT303**, not a harness crash.
//! 4. **FT1xx** — the recorded trace replays through the conformance
//!    checker (`check_trace`): track discipline, stage identity, the
//!    §2.2 recovery contract, Eq. 1 conservation.
//! 5. **FT302** — the faulted run's (order-insensitive) result must equal
//!    the reference's. Recovery may cost time; it must never change the
//!    answer.
//! 6. **FT301** — the whole faulted run replays from scratch; the two
//!    canonical trace projections must be identical. Same seed, same
//!    history.
//! 7. **FT304** (warn) — scheduled faults that never fired mean the
//!    schedule outran the run: the case tests less than it claims.
//!
//! Every `Error` finding triggers a flight-recorder dump, so a failing
//! seed leaves a forensic trail beyond its report.

use std::panic::AssertUnwindSafe;

use ftpde_analysis::prelude::{
    check_trace, CheckOptions, Code, Diagnostic, PlanValidator, Report, Severity, StagePlan,
};
use ftpde_core::prelude::MatConfig;
use ftpde_engine::prelude::{
    load_catalog, run_query_resumable_traced, Catalog, EnginePlan, FailureInjector, Injection,
    RunOptions, RunReport,
};
use ftpde_obs::export::{canonical_trace, to_jsonl, CanonicalScope};
use ftpde_obs::{Event, MemoryRecorder};
use ftpde_sim::prelude::FaultSchedule;
use ftpde_store::{FaultStore, MemBackend, StoreBug};
use ftpde_tpch::prelude::Database;
use serde::{Deserialize, Serialize};

use crate::case::SimCase;
use crate::workload::RecoveryKind;

/// The TPC-H generator seed every harness database uses. Varying data
/// per case would buy little coverage and cost shrink stability (a
/// schedule minimized on one dataset must keep failing on the same one).
pub const DATA_SEED: u64 = 1;

/// Deterministic facts about the faulted run, for reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Fine-grained node retries of the faulted run.
    pub node_retries: u64,
    /// Coarse query restarts of the faulted run.
    pub query_restarts: u32,
    /// Whether the coarse restart limit was hit.
    pub aborted: bool,
    /// Total result rows of the faulted run.
    pub result_rows: u64,
    /// Order-insensitive FNV-1a hash of the faulted run's result.
    pub result_hash: String,
    /// Same hash for the failure-free reference run.
    pub reference_hash: String,
    /// Corrupt segments the engine observed (injected and organic).
    pub corruptions: u64,
    /// Canonical trace length of the faulted run.
    pub trace_events: u64,
    /// Descriptions of faults that took effect, sorted.
    pub fired: Vec<String>,
}

/// The runner's verdict on one case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseOutcome {
    /// The case that ran.
    pub case: SimCase,
    /// Findings, across all oracles.
    pub report: Report,
    /// Run facts; absent when the plan lint rejected the workload or
    /// every run panicked before producing a report.
    pub summary: Option<RunSummary>,
}

impl CaseOutcome {
    /// Whether any oracle found an error.
    pub fn failing(&self) -> bool {
        self.report.count(Severity::Error) > 0
    }

    /// One-line text rendering of the verdict.
    pub fn headline(&self) -> String {
        let verdict = match crate::shrink::primary_code(&self.report) {
            Some(code) => format!("{} error", code.as_str()),
            None if self.report.is_clean() => "clean".to_string(),
            None => "warn".to_string(),
        };
        format!(
            "seed {}: {verdict} ({}; {} fault(s))",
            self.case.seed,
            self.case.workload.describe(),
            self.case.schedule.len()
        )
    }
}

/// One engine execution under a schedule: what happened, in full.
struct Execution {
    /// The run's report, or the panic message.
    outcome: Result<RunReport, String>,
    /// Raw recorded trace.
    events: Vec<Event>,
    /// Fault descriptions that took effect, sorted.
    fired: Vec<String>,
    /// Armed fault descriptions that never fired, sorted.
    unfired: Vec<String>,
}

/// Runs `schedule` against `plan` once, with faults armed, under
/// `catch_unwind`.
fn execute(
    plan: &EnginePlan,
    config: &MatConfig,
    catalog: &Catalog,
    opts: &RunOptions,
    schedule: &FaultSchedule,
    bug: StoreBug,
) -> Execution {
    use ftpde_sim::prelude::FaultEvent;
    let inner = MemBackend::new();
    let store = FaultStore::new(&inner);
    store.set_bug(bug);
    for fault in schedule.store_faults() {
        match *fault {
            FaultEvent::TornWrite { op, node } => store.arm_torn(op, node as usize),
            FaultEvent::LostPut { op, node } => store.arm_lost_put(op, node as usize),
            FaultEvent::CorruptRead { op, node, nth_get } => {
                store.arm_corrupt_read(op, node as usize, nth_get);
            }
            FaultEvent::DelayIo { op, node, virtual_ms, uses } => {
                store.arm_delay(op, node as usize, u64::from(virtual_ms), uses);
            }
            FaultEvent::KillNode { .. } => unreachable!("kills are not store faults"),
        }
    }
    let injector =
        FailureInjector::with(schedule.kills().map(|(stage, node, attempt)| Injection {
            stage,
            node: node as usize,
            attempt,
        }));
    let rec = MemoryRecorder::new();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_query_resumable_traced(plan, config, catalog, &injector, opts, &store, None, &rec)
    }))
    .map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    });
    let mut fired = store.fired();
    fired.extend(
        injector
            .fired()
            .iter()
            .map(|i| format!("kill stage {} node {} attempt {}", i.stage, i.node, i.attempt)),
    );
    fired.sort();
    let mut unfired = store.unfired();
    let landed = injector.fired();
    for (stage, node, attempt) in schedule.kills() {
        let hit =
            landed.iter().any(|i| (i.stage, i.node as u32, i.attempt) == (stage, node, attempt));
        if !hit {
            unfired.push(format!("kill stage {stage} node {node} attempt {attempt}"));
        }
    }
    unfired.sort();
    Execution { outcome, events: rec.take(), fired, unfired }
}

/// Order-insensitive FNV-1a fingerprint of a run's result rows.
fn result_hash(report: &RunReport) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (id, rows) in &report.results {
        for row in rows {
            lines.push(format!("{} {row:?}", id.0));
        }
    }
    lines.sort();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for line in &lines {
        for byte in line.as_bytes().iter().chain(b"\n") {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

/// The canonical projection scope for a workload: coarse-restart runs
/// keep only the coordinator's track (worker cancellation is racy by
/// design); fine-grained runs canonicalize every track.
fn scope_for(recovery: RecoveryKind) -> CanonicalScope {
    match recovery {
        RecoveryKind::Fine => CanonicalScope::AllTracks,
        RecoveryKind::Coarse => CanonicalScope::CoordinatorOnly,
    }
}

/// Runs the full oracle pipeline on `case`.
pub fn run_case(case: &SimCase) -> CaseOutcome {
    let subject = format!("sim seed {}", case.seed);
    let mut report = Report::new(&subject);
    let plan = case.workload.plan();
    let dag = plan.to_plan_dag();
    let config = match case.workload.mat_config(&dag) {
        Ok(config) => config,
        Err(err) => {
            report.push(Diagnostic::new(
                Code::FT303,
                Severity::Error,
                format!("materialization config failed to resolve: {err}"),
            ));
            return CaseOutcome { case: case.clone(), report, summary: None };
        }
    };

    // Oracle 1: the workload must pass the plan linter before it runs.
    let lint =
        PlanValidator::new(case.workload.cost_params()).validate_ft_plan(&subject, &dag, &config);
    let lint_failed = lint.count(Severity::Error) > 0;
    for d in lint.diagnostics {
        report.push(d);
    }
    if lint_failed {
        return CaseOutcome { case: case.clone(), report, summary: None };
    }

    let db = Database::generate(case.workload.sf, DATA_SEED);
    let catalog = load_catalog(&db, case.workload.nodes as usize);
    let opts = case.workload.run_options();

    // Oracle 2: failure-free reference. A panic here is as much FT303 as
    // one under faults — the workload itself is broken.
    let reference =
        execute(&plan, &config, &catalog, &opts, &FaultSchedule::empty(), StoreBug::None);
    let reference_run = match reference.outcome {
        Ok(run) => run,
        Err(msg) => {
            report.push(Diagnostic::new(
                Code::FT303,
                Severity::Error,
                format!("panic during failure-free reference run: {msg}"),
            ));
            dump_on_error(&report);
            return CaseOutcome { case: case.clone(), report, summary: None };
        }
    };

    // Oracle 3: the faulted run, plus its from-scratch replay.
    let bug = case.bug.store_bug();
    let faulted = execute(&plan, &config, &catalog, &opts, &case.schedule, bug);
    let replay = execute(&plan, &config, &catalog, &opts, &case.schedule, bug);

    let summary = match &faulted.outcome {
        Err(msg) => {
            report.push(Diagnostic::new(
                Code::FT303,
                Severity::Error,
                format!("panic during simulated run: {msg}"),
            ));
            None
        }
        Ok(run) => {
            // Oracle 4: trace conformance (FT1xx).
            let pipe_const = case.workload.cost_params().pipe_const;
            let stage_plan = StagePlan::engine_ids(&dag, &config, pipe_const);
            let conformance =
                check_trace(&subject, &faulted.events, Some(&stage_plan), &CheckOptions::default());
            for d in conformance.diagnostics {
                report.push(d);
            }

            // Oracle 5: result divergence (FT302).
            let faulted_hash = result_hash(run);
            let reference_hash = result_hash(&reference_run);
            if faulted_hash != reference_hash {
                report.push(Diagnostic::new(
                    Code::FT302,
                    Severity::Error,
                    format!(
                        "faulted result {faulted_hash} diverges from failure-free \
                         reference {reference_hash} ({} fault(s) injected)",
                        case.schedule.len()
                    ),
                ));
            }

            // Oracle 6: replay determinism (FT301).
            let scope = scope_for(case.workload.recovery);
            let canon = canonical_trace(&faulted.events, scope);
            match &replay.outcome {
                Err(msg) => report.push(Diagnostic::new(
                    Code::FT301,
                    Severity::Error,
                    format!("replay of the same schedule panicked: {msg}"),
                )),
                Ok(replay_run) => {
                    let canon_replay = canonical_trace(&replay.events, scope);
                    if to_jsonl(&canon) != to_jsonl(&canon_replay) {
                        let first = canon
                            .iter()
                            .zip(canon_replay.iter())
                            .position(|(a, b)| a != b)
                            .map_or_else(
                                || format!("lengths {} vs {}", canon.len(), canon_replay.len()),
                                |i| format!("first divergence at canonical event {i}"),
                            );
                        report.push(Diagnostic::new(
                            Code::FT301,
                            Severity::Error,
                            format!("same schedule, different canonical trace: {first}"),
                        ));
                    }
                    let replay_hash = result_hash(replay_run);
                    if replay_hash != faulted_hash {
                        report.push(Diagnostic::new(
                            Code::FT301,
                            Severity::Error,
                            format!(
                                "same schedule, different result: {faulted_hash} vs \
                                 {replay_hash}"
                            ),
                        ));
                    }
                }
            }

            // Oracle 7: schedule coverage (FT304, warn-only).
            if !faulted.unfired.is_empty() {
                report.push(Diagnostic::new(
                    Code::FT304,
                    Severity::Warn,
                    format!("scheduled faults never fired: {}", faulted.unfired.join("; ")),
                ));
            }

            Some(RunSummary {
                node_retries: run.node_retries,
                query_restarts: run.query_restarts,
                aborted: run.aborted,
                result_rows: run.results.iter().map(|(_, rows)| rows.len() as u64).sum(),
                result_hash: faulted_hash,
                reference_hash,
                corruptions: run.segments_corrupt,
                trace_events: canon.len() as u64,
                fired: faulted.fired.clone(),
            })
        }
    };

    dump_on_error(&report);
    CaseOutcome { case: case.clone(), report, summary }
}

/// Convenience: derive and run one seed.
pub fn run_seed(seed: u64) -> CaseOutcome {
    run_case(&SimCase::derive(seed))
}

/// Dumps the flight recorder when a report carries an error, leaving a
/// forensic trail next to the diagnostic.
fn dump_on_error(report: &Report) {
    if report.count(Severity::Error) > 0 {
        let _ = ftpde_obs::flight::global().dump_now("sim-harness");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::BugMode;

    #[test]
    fn a_clean_seed_produces_a_clean_report_and_summary() {
        // Seed 0 is part of the tier-1 determinism sweep; whatever its
        // workload, a correct engine must come back clean.
        let outcome = run_seed(0);
        assert!(!outcome.failing(), "{}", outcome.report.render());
        assert!(outcome.headline().contains("seed 0"));
        let summary = outcome.summary.expect("run completed");
        assert_eq!(summary.result_hash, summary.reference_hash);
        assert!(!summary.aborted);
        assert!(summary.trace_events > 0);
    }

    #[test]
    fn outcomes_are_identical_across_invocations() {
        for seed in [3u64, 11] {
            let a = run_seed(seed);
            let b = run_seed(seed);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn result_hash_ignores_row_order() {
        use ftpde_engine::prelude::EOpId;
        use ftpde_store::int_row;
        let base = RunReport {
            results: vec![(EOpId(4), vec![int_row(&[1, 2]), int_row(&[3, 4])])],
            node_retries: 0,
            query_restarts: 0,
            aborted: false,
            rows_materialized: 0,
            bytes_materialized: 0,
            segments_corrupt: 0,
            stages_skipped: 0,
            stage_timings: Vec::new(),
        };
        let mut flipped = base.clone();
        flipped.results[0].1.reverse();
        assert_eq!(result_hash(&base), result_hash(&flipped));
        let mut other = base.clone();
        other.results[0].1[0] = int_row(&[1, 99]);
        assert_ne!(result_hash(&base), result_hash(&other));
    }

    #[test]
    fn the_serve_corrupt_data_bug_is_caught_by_ft302() {
        // Find a seed whose schedule damages a slot the query actually
        // reads back: under the bug the store serves mutated rows and
        // the result diverges from the reference.
        let caught = (0..200u64).find(|&seed| {
            let case = SimCase::derive(seed).with_bug(BugMode::ServeCorruptData);
            let has_damage = case.schedule.events.iter().any(|e| {
                matches!(
                    e,
                    ftpde_sim::prelude::FaultEvent::TornWrite { .. }
                        | ftpde_sim::prelude::FaultEvent::CorruptRead { .. }
                )
            });
            has_damage && run_case(&case).report.diagnostics.iter().any(|d| d.code == Code::FT302)
        });
        assert!(caught.is_some(), "no seed in 0..200 tripped FT302 under the seeded bug");
    }
}
