//! Property tests for the schedule shrinker, driven by synthetic
//! oracles: thousands of shrinks run without ever touching the engine,
//! and the properties hold for *any* deterministic failure predicate —
//! the real runner-backed oracle in `shrink_case` is just one of them.
//!
//! The three contracts under test:
//!
//! * **Reproduction** — the shrunk schedule still fails the oracle that
//!   the input failed (here modeled as a synthetic "failure code" the
//!   acceptance predicate must preserve, mirroring `shrink_case`'s
//!   same-primary-code rule).
//! * **1-minimality** — removing any single remaining event makes the
//!   failure disappear.
//! * **Determinism** — the same input and oracle shrink to the same
//!   schedule every time.

use ftpde_sim::prelude::FaultEvent;
use ftpde_simharness::prelude::shrink_schedule;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One arbitrary fault event. The vendored proptest has no oneof
/// combinators, so variant structure comes from a seeded RNG (the same
/// idiom as the conformance proptests).
fn event(rng: &mut StdRng) -> FaultEvent {
    let op = rng.gen_range(0..6u32);
    let node = rng.gen_range(0..4u32);
    match rng.gen_range(0..5u32) {
        0 => FaultEvent::KillNode { stage: op, node, attempt: rng.gen_range(0..3) },
        1 => FaultEvent::TornWrite { op, node },
        2 => FaultEvent::LostPut { op, node },
        3 => FaultEvent::CorruptRead { op, node, nth_get: rng.gen_range(0..3) },
        _ => FaultEvent::DelayIo {
            op,
            node,
            virtual_ms: rng.gen_range(1..5),
            uses: rng.gen_range(1..4),
        },
    }
}

fn events_from(seed: u64, n: usize) -> Vec<FaultEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| event(&mut rng)).collect()
}

/// A synthetic failure classifier, standing in for `primary_code`: code
/// 1 when any corrupt-read is present, else code 2 when at least two
/// kills are present, else no failure.
fn code_of(s: &[FaultEvent]) -> Option<u8> {
    if s.iter().any(|e| matches!(e, FaultEvent::CorruptRead { .. })) {
        Some(1)
    } else if s.iter().filter(|e| matches!(e, FaultEvent::KillNode { .. })).count() >= 2 {
        Some(2)
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn a_single_culprit_shrinks_to_exactly_that_event(
        seed in any::<u64>(),
        n in 1usize..16,
    ) {
        let events = events_from(seed, n);
        let target = events[0];
        let mut oracle = |s: &[FaultEvent]| s.contains(&target);
        let shrunk = shrink_schedule(&events, &mut oracle);
        // 1-minimality plus reproduction pin the result completely:
        // the one event the oracle demands, nothing else.
        prop_assert_eq!(shrunk, vec![target]);
    }

    #[test]
    fn the_result_is_one_minimal_under_a_threshold_oracle(
        seed in any::<u64>(),
        n in 1usize..16,
    ) {
        let events = events_from(seed, n);
        let k = events.iter().filter(|e| e.is_store_fault()).count();
        let mut oracle =
            |s: &[FaultEvent]| s.iter().filter(|e| e.is_store_fault()).count() >= k;
        let shrunk = shrink_schedule(&events, &mut oracle);
        // Exactly the k store faults survive; every kill is noise.
        prop_assert_eq!(shrunk.len(), k);
        prop_assert!(shrunk.iter().all(FaultEvent::is_store_fault));
        for i in 0..shrunk.len() {
            let mut cand = shrunk.clone();
            cand.remove(i);
            prop_assert!(!oracle(&cand), "not 1-minimal at {}: {:?}", i, shrunk);
        }
    }

    #[test]
    fn shrinking_preserves_the_failure_code(
        seed in any::<u64>(),
        n in 2usize..16,
    ) {
        let events = events_from(seed, n);
        prop_assume!(code_of(&events).is_some());
        let original = code_of(&events).unwrap();
        // The same-failure acceptance rule `shrink_case` uses: a
        // candidate counts only if it fails with the original's code.
        let mut oracle = |s: &[FaultEvent]| code_of(s) == Some(original);
        let shrunk = shrink_schedule(&events, &mut oracle);
        prop_assert_eq!(code_of(&shrunk), Some(original));
        prop_assert!(!shrunk.is_empty());
    }

    #[test]
    fn shrinking_is_deterministic(
        seed in any::<u64>(),
        n in 1usize..16,
    ) {
        let events = events_from(seed, n);
        let target = events[n / 2];
        let mut first = |s: &[FaultEvent]| s.contains(&target);
        let mut second = |s: &[FaultEvent]| s.contains(&target);
        let a = shrink_schedule(&events, &mut first);
        let b = shrink_schedule(&events, &mut second);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ordinals_are_advanced_whenever_the_oracle_permits(
        seed in any::<u64>(),
        n in 1usize..12,
    ) {
        let events = events_from(seed, n);
        prop_assume!(events.iter().any(|e| matches!(e, FaultEvent::CorruptRead { .. })));
        // The oracle only cares that *some* corrupt-read exists, so the
        // survivor's retry ordinal must be driven to zero.
        let mut oracle =
            |s: &[FaultEvent]| s.iter().any(|e| matches!(e, FaultEvent::CorruptRead { .. }));
        let shrunk = shrink_schedule(&events, &mut oracle);
        prop_assert_eq!(shrunk.len(), 1);
        prop_assert!(
            matches!(shrunk[0], FaultEvent::CorruptRead { nth_get: 0, .. }),
            "ordinal not advanced: {:?}",
            shrunk
        );
    }
}
