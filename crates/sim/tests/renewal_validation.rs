//! Statistical validation of the simulator against closed-form renewal
//! theory.
//!
//! For a single operator of duration `D` executed on one node with
//! exponential failures at rate `λ = 1/MTBF` and repair time `r`,
//! restart-from-scratch recovery forms a renewal-reward process whose
//! expected completion time is the textbook result (e.g. Tobias &
//! Trindade, *Applied Reliability* — the paper's reliability reference):
//!
//! ```text
//! E[T] = (1/λ + r) · (e^{λD} − 1)
//! ```
//!
//! The simulator must converge to this expectation over many traces; the
//! cost model's 95th-percentile `T(c)` must be an upper band around it for
//! small failure counts. These tests tie all three layers (trace
//! generation, simulation, cost model) to independent mathematics.

use ftpde_cluster::config::ClusterConfig;
use ftpde_cluster::trace::FailureTrace;
use ftpde_core::config::MatConfig;
use ftpde_core::cost::CostParams;
use ftpde_core::dag::PlanDag;
use ftpde_sim::scheme::Recovery;
use ftpde_sim::simulate::{simulate, SimOptions};

/// Closed-form expected completion of one attempt-until-success task.
fn renewal_expectation(duration: f64, mtbf: f64, mttr: f64) -> f64 {
    let lambda = 1.0 / mtbf;
    (1.0 / lambda + mttr) * ((lambda * duration).exp() - 1.0)
}

fn single_op_plan(duration: f64) -> PlanDag {
    let mut b = PlanDag::builder();
    b.free("op", duration, 0.0, &[]).unwrap();
    b.build().unwrap()
}

fn mean_completion(duration: f64, mtbf: f64, mttr: f64, runs: usize) -> f64 {
    let cluster = ClusterConfig::new(1, mtbf, mttr);
    let plan = single_op_plan(duration);
    let config = MatConfig::none(&plan);
    let opts = SimOptions::default();
    let horizon = 60.0 * (duration + mtbf + mttr);
    let total: f64 = (0..runs)
        .map(|seed| {
            let trace = FailureTrace::generate(&cluster, horizon, seed as u64);
            simulate(&plan, &config, Recovery::FineGrained, &cluster, &trace, &opts).completion
        })
        .sum();
    total / runs as f64
}

#[test]
fn simulator_matches_renewal_theory_low_failure_rate() {
    // D = 100, MTBF = 1000: E[T] = 1000·(e^0.1 − 1) ≈ 105.17.
    let expected = renewal_expectation(100.0, 1000.0, 0.0);
    let measured = mean_completion(100.0, 1000.0, 0.0, 1500);
    assert!(
        (measured - expected).abs() < expected * 0.06,
        "measured {measured:.2} vs theory {expected:.2}"
    );
}

#[test]
fn simulator_matches_renewal_theory_high_failure_rate() {
    // D = MTBF: E[T] = (100 + 5)·(e − 1) ≈ 180.5.
    let expected = renewal_expectation(100.0, 100.0, 5.0);
    let measured = mean_completion(100.0, 100.0, 5.0, 1500);
    assert!(
        (measured - expected).abs() < expected * 0.06,
        "measured {measured:.2} vs theory {expected:.2}"
    );
}

#[test]
fn simulator_matches_renewal_theory_with_repair_time() {
    let expected = renewal_expectation(50.0, 200.0, 10.0);
    let measured = mean_completion(50.0, 200.0, 10.0, 1500);
    assert!(
        (measured - expected).abs() < expected * 0.05,
        "measured {measured:.2} vs theory {expected:.2}"
    );
}

#[test]
fn cost_model_percentile_brackets_the_renewal_mean() {
    // The paper sizes attempts for the 95th percentile (S = 0.95), so for
    // moderate failure rates T(c) should sit at or above the renewal MEAN,
    // but not absurdly far above it.
    for (d, mtbf) in [(100.0, 1000.0), (100.0, 400.0), (50.0, 200.0)] {
        let params = CostParams::new(mtbf, 0.0);
        let model = params.op_cost(d);
        let theory = renewal_expectation(d, mtbf, 0.0);
        assert!(
            model >= theory * 0.9,
            "D={d}, MTBF={mtbf}: model {model:.1} far below renewal mean {theory:.1}"
        );
        assert!(
            model <= theory * 2.0,
            "D={d}, MTBF={mtbf}: model {model:.1} unreasonably above mean {theory:.1}"
        );
    }
}

#[test]
fn multi_node_completion_is_max_of_renewals() {
    // On n independent nodes the operator completes at the max of n
    // per-node renewal processes, so the mean grows with n but stays
    // bounded by n · E[single] (crude union bound).
    let single = mean_completion(100.0, 300.0, 1.0, 800);
    let cluster = ClusterConfig::new(8, 300.0, 1.0);
    let plan = single_op_plan(100.0);
    let config = MatConfig::none(&plan);
    let opts = SimOptions::default();
    let total: f64 = (0..800)
        .map(|seed| {
            let trace = FailureTrace::generate(&cluster, 1e5, 10_000 + seed as u64);
            simulate(&plan, &config, Recovery::FineGrained, &cluster, &trace, &opts).completion
        })
        .sum();
    let eight = total / 800.0;
    assert!(eight > single, "max over 8 nodes exceeds a single node's mean");
    assert!(eight < 8.0 * single, "union bound");
}
