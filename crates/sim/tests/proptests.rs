//! Property-based tests of the discrete-event simulator's invariants.

use proptest::prelude::*;

use ftpde_cluster::config::ClusterConfig;
use ftpde_cluster::trace::FailureTrace;
use ftpde_core::config::MatConfig;
use ftpde_core::dag::PlanDag;
use ftpde_core::operator::OpId;
use ftpde_sim::scheme::Recovery;
use ftpde_sim::simulate::{baseline_runtime, failure_free_makespan, simulate, SimOptions};

/// Strategy: a random chain plan of 1..=6 free operators.
fn arb_chain() -> impl Strategy<Value = PlanDag> {
    collection::vec((1.0f64..50.0, 0.0f64..20.0), 1..=6).prop_map(|ops| {
        let mut b = PlanDag::builder();
        let mut prev: Option<OpId> = None;
        for (i, (tr, tm)) in ops.into_iter().enumerate() {
            let inputs: Vec<OpId> = prev.into_iter().collect();
            prev = Some(b.free(format!("op{i}"), tr, tm, &inputs).unwrap());
        }
        b.build().unwrap()
    })
}

/// Strategy: a failure trace over `nodes` nodes with a handful of failure
/// times below `horizon`.
fn arb_trace(nodes: usize, horizon: f64) -> impl Strategy<Value = FailureTrace> {
    collection::vec(collection::vec(1.0f64..horizon, 0..5), nodes..=nodes)
        .prop_map(move |times| FailureTrace::from_times(times, 1e12))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Completion under failures is never below the failure-free makespan.
    #[test]
    fn failures_never_speed_things_up(
        plan in arb_chain(),
        mask in any::<u64>(),
        trace in arb_trace(4, 500.0),
        mttr in 0.0f64..10.0,
    ) {
        let cluster = ClusterConfig::new(4, 1000.0, mttr);
        let n = plan.free_count();
        let cfg = MatConfig::from_free_bits(&plan, mask & ((1u64 << n) - 1));
        let opts = SimOptions::default();
        let makespan = failure_free_makespan(&plan, &cfg, 1.0);
        for rec in [Recovery::FineGrained, Recovery::CoarseRestart] {
            let r = simulate(&plan, &cfg, rec, &cluster, &trace, &opts);
            if !r.aborted {
                prop_assert!(r.completion >= makespan - 1e-9,
                    "{rec:?}: {} < {makespan}", r.completion);
            }
        }
    }

    /// With no failures, every recovery mode takes exactly the makespan
    /// and reports zero retries/restarts.
    #[test]
    fn failure_free_is_exact(plan in arb_chain(), mask in any::<u64>()) {
        let cluster = ClusterConfig::new(4, 1000.0, 1.0);
        let trace = FailureTrace::failure_free(&cluster, 1e12);
        let n = plan.free_count();
        let cfg = MatConfig::from_free_bits(&plan, mask & ((1u64 << n) - 1));
        let opts = SimOptions::default();
        let makespan = failure_free_makespan(&plan, &cfg, 1.0);
        for rec in [Recovery::FineGrained, Recovery::CoarseRestart] {
            let r = simulate(&plan, &cfg, rec, &cluster, &trace, &opts);
            prop_assert!((r.completion - makespan).abs() < 1e-9);
            prop_assert_eq!(r.node_retries, 0);
            prop_assert_eq!(r.restarts, 0);
            prop_assert!(!r.aborted);
        }
    }

    /// Materializing more can only change completion by bounded amounts:
    /// adding a checkpoint adds at most its materialization cost on a
    /// failure-free run.
    #[test]
    fn materialization_cost_is_bounded_without_failures(plan in arb_chain()) {
        let baseline = baseline_runtime(&plan, 1.0);
        let all = failure_free_makespan(&plan, &MatConfig::all(&plan), 1.0);
        let total_mat: f64 = plan.iter().map(|(_, o)| o.mat_cost).sum();
        prop_assert!(all >= baseline - 1e-9);
        prop_assert!(all <= baseline + total_mat + 1e-9);
    }

    /// Mid-operator checkpointing never hurts on a failure-free run beyond
    /// its own write costs, and never loses more work than no
    /// checkpointing under failures.
    #[test]
    fn mid_op_checkpoints_bounded(
        plan in arb_chain(),
        trace in arb_trace(2, 300.0),
        interval in 1.0f64..50.0,
    ) {
        let cluster = ClusterConfig::new(2, 1000.0, 1.0);
        let cfg = MatConfig::none(&plan);
        let plain = SimOptions::default();
        let ckpt = SimOptions::default().with_mid_op_checkpoints(interval, 0.0);
        let r_plain = simulate(&plan, &cfg, Recovery::FineGrained, &cluster, &trace, &plain);
        let r_ckpt = simulate(&plan, &cfg, Recovery::FineGrained, &cluster, &trace, &ckpt);
        // Free checkpoints can only help.
        prop_assert!(r_ckpt.completion <= r_plain.completion + 1e-9,
            "free checkpoints hurt: {} vs {}", r_ckpt.completion, r_plain.completion);
    }

    /// Skew factors of 1.0 are a no-op; larger factors only increase
    /// completion.
    #[test]
    fn skew_monotone(
        plan in arb_chain(),
        trace in arb_trace(3, 400.0),
        extra in 0.0f64..2.0,
    ) {
        let cluster = ClusterConfig::new(3, 1000.0, 1.0);
        let cfg = MatConfig::none(&plan);
        let unit = SimOptions::default().with_skew(vec![1.0; 3]);
        let plain = SimOptions::default();
        let skewed = SimOptions::default().with_skew(vec![1.0, 1.0 + extra, 1.0]);
        let r_plain = simulate(&plan, &cfg, Recovery::FineGrained, &cluster, &trace, &plain);
        let r_unit = simulate(&plan, &cfg, Recovery::FineGrained, &cluster, &trace, &unit);
        let r_skew = simulate(&plan, &cfg, Recovery::FineGrained, &cluster, &trace, &skewed);
        prop_assert!((r_plain.completion - r_unit.completion).abs() < 1e-9);
        prop_assert!(r_skew.completion >= r_plain.completion - 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fine-grained recovery dominates coarse restart *in distribution*
    /// (it strictly preserves more work). Per-trace the ordering can flip
    /// by luck — a restart shifts later execution windows and may dodge a
    /// failure fine-grained execution runs into — so the property is
    /// asserted on the mean over many generated traces.
    #[test]
    fn fine_grained_dominates_coarse_on_average(
        plan in arb_chain(),
        mask in any::<u64>(),
        seed in 0u64..1000,
    ) {
        let cluster = ClusterConfig::new(3, 300.0, 1.0);
        let n = plan.free_count();
        let cfg = MatConfig::from_free_bits(&plan, mask & ((1u64 << n) - 1));
        let opts = SimOptions::default();
        let mut fine_sum = 0.0;
        let mut coarse_sum = 0.0;
        let mut completed = 0u32;
        for i in 0..32u64 {
            let trace = FailureTrace::generate(&cluster, 1e5, seed * 64 + i);
            let fine = simulate(&plan, &cfg, Recovery::FineGrained, &cluster, &trace, &opts);
            let coarse = simulate(&plan, &cfg, Recovery::CoarseRestart, &cluster, &trace, &opts);
            if coarse.aborted {
                continue; // coarse lost outright
            }
            completed += 1;
            fine_sum += fine.completion;
            coarse_sum += coarse.completion;
        }
        if completed >= 16 {
            prop_assert!(
                fine_sum <= coarse_sum * 1.02,
                "mean fine {} > mean coarse {}",
                fine_sum / completed as f64,
                coarse_sum / completed as f64
            );
        }
    }
}
