//! Execution timelines: an optional event log the simulator can emit,
//! useful for debugging recovery behaviour, for visualizing runs, and for
//! asserting fine-grained timing properties in tests.
//!
//! Events are emitted in processing order — by stage, then by node within
//! a stage — so failure events of concurrently executing nodes are grouped
//! per node rather than globally sorted by timestamp; sort by
//! [`SimEvent::at`] for a strict chronological view.

use serde::{Deserialize, Serialize};

use ftpde_cluster::config::Seconds;
use ftpde_core::collapse::CId;
use ftpde_core::cost::EstimateBreakdown;

/// One timeline event of a simulated query execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A collapsed operator became ready and started on all nodes.
    StageStarted {
        /// The stage (collapsed operator).
        stage: CId,
        /// Virtual start time.
        at: Seconds,
    },
    /// A node failed while executing a stage; its progress (beyond any
    /// mid-operator checkpoint) is lost.
    NodeFailed {
        /// The stage being executed.
        stage: CId,
        /// The failed node.
        node: usize,
        /// Failure time.
        at: Seconds,
        /// When the node resumes (failure time + MTTR).
        resumes_at: Seconds,
        /// Work lost to the failure: progress since the node's last
        /// surviving state (stage input or mid-operator checkpoint) that
        /// must be re-executed.
        lost: Seconds,
    },
    /// A stage finished on every node (its output is materialized if the
    /// configuration says so).
    StageCompleted {
        /// The stage.
        stage: CId,
        /// Completion time (max over nodes).
        at: Seconds,
    },
    /// Coarse recovery restarted the whole query.
    QueryRestarted {
        /// 1-based restart count.
        attempt: u32,
        /// Restart time.
        at: Seconds,
    },
    /// The query finished.
    QueryCompleted {
        /// Completion time.
        at: Seconds,
    },
    /// The query hit the restart limit and was aborted.
    QueryAborted {
        /// Abort time.
        at: Seconds,
    },
}

impl SimEvent {
    /// The event's timestamp.
    pub fn at(&self) -> Seconds {
        match *self {
            SimEvent::StageStarted { at, .. }
            | SimEvent::NodeFailed { at, .. }
            | SimEvent::StageCompleted { at, .. }
            | SimEvent::QueryRestarted { at, .. }
            | SimEvent::QueryCompleted { at }
            | SimEvent::QueryAborted { at } => at,
        }
    }

    /// The recovery time this event charges to the query: lost work plus
    /// repair window for node failures, zero otherwise. (Coarse restarts
    /// are accounted by the simulator itself, since the lost attempt span
    /// is not part of the event.)
    pub fn recovery_seconds(&self) -> Seconds {
        match *self {
            SimEvent::NodeFailed { at, resumes_at, lost, .. } => (resumes_at - at) + lost,
            _ => 0.0,
        }
    }
}

/// Converts a simulated-seconds timestamp to the microsecond unit of the
/// observability layer.
fn sim_us(at: Seconds) -> u64 {
    (at.max(0.0) * 1e6).round() as u64
}

impl SimLog {
    /// Converts the timeline into observability events (category `"sim"`,
    /// timestamps in *simulated* microseconds): stage start/completion
    /// pairs become spans, failures / restarts / query termination become
    /// instants. Node failures use the node index as the track id.
    pub fn to_obs_events(&self) -> Vec<ftpde_obs::Event> {
        self.to_obs_events_with(None)
    }

    /// Like [`SimLog::to_obs_events`], additionally tagging each stage
    /// span with the cost model's per-stage prediction (matched by `CId`)
    /// so the trace carries both sides of the predicted-vs-observed join
    /// consumed by [`ftpde_obs::CalibrationReport`]: `pred_run_s` /
    /// `pred_mat_s` / `pred_rec_s` / `pred_cost_s` / `dominant`.
    pub fn to_obs_events_with(&self, pred: Option<&EstimateBreakdown>) -> Vec<ftpde_obs::Event> {
        use std::collections::HashMap;

        let mut out = Vec::new();
        let mut started: HashMap<CId, Seconds> = HashMap::new();
        for e in self.events() {
            match *e {
                SimEvent::StageStarted { stage, at } => {
                    started.insert(stage, at);
                }
                SimEvent::StageCompleted { stage, at } => {
                    let start = started.remove(&stage).unwrap_or(at);
                    let mut span = ftpde_obs::Event::span(
                        format!("stage {}", stage.0),
                        "sim",
                        sim_us(start),
                        sim_us(at) - sim_us(start),
                    )
                    .arg("stage", stage.0 as u64);
                    let est = pred.and_then(|p| p.stages.iter().find(|s| s.stage == stage.0));
                    if let Some(s) = est {
                        span = span
                            .arg("pred_run_s", s.run_cost)
                            .arg("pred_mat_s", s.mat_cost)
                            .arg("pred_rec_s", s.recovery_cost)
                            .arg("pred_cost_s", s.ft_cost)
                            .arg("dominant", s.on_dominant_path);
                    }
                    out.push(span);
                }
                SimEvent::NodeFailed { stage, node, at, resumes_at, lost } => {
                    out.push(
                        ftpde_obs::Event::instant("node_failure", "sim", sim_us(at))
                            .tid(node as u32)
                            .arg("stage", stage.0 as u64)
                            .arg("node", node)
                            .arg("resumes_at_s", resumes_at)
                            .arg("lost_s", lost),
                    );
                }
                SimEvent::QueryRestarted { attempt, at } => {
                    out.push(
                        ftpde_obs::Event::instant("query_restart", "sim", sim_us(at))
                            .arg("attempt", attempt),
                    );
                }
                SimEvent::QueryCompleted { at } => {
                    out.push(ftpde_obs::Event::instant("query_completed", "sim", sim_us(at)));
                }
                SimEvent::QueryAborted { at } => {
                    out.push(ftpde_obs::Event::instant("query_aborted", "sim", sim_us(at)));
                }
            }
        }
        out
    }

    /// Records the converted timeline into `rec` (no-op when disabled).
    pub fn record_into(&self, rec: &dyn ftpde_obs::Recorder) {
        self.record_into_with(rec, None);
    }

    /// [`SimLog::record_into`] with the prediction tagging of
    /// [`SimLog::to_obs_events_with`].
    pub fn record_into_with(
        &self,
        rec: &dyn ftpde_obs::Recorder,
        pred: Option<&EstimateBreakdown>,
    ) {
        if !rec.enabled() {
            return;
        }
        for e in self.to_obs_events_with(pred) {
            rec.record(e);
        }
    }

    /// Total recovery time per stage, derived from the failure events:
    /// `(stage, Σ repair + lost work)` pairs in stage order.
    pub fn recovery_by_stage(&self) -> Vec<(CId, Seconds)> {
        let mut acc: Vec<(CId, Seconds)> = Vec::new();
        for e in self.events() {
            if let SimEvent::NodeFailed { stage, .. } = *e {
                match acc.iter_mut().find(|(s, _)| *s == stage) {
                    Some((_, total)) => *total += e.recovery_seconds(),
                    None => acc.push((stage, e.recovery_seconds())),
                }
            }
        }
        acc
    }
}

/// An event sink. [`SimLog::None`] is free; [`SimLog::Events`] collects
/// the full timeline.
#[derive(Debug, Default)]
pub enum SimLog {
    /// Discard events (the default for performance experiments).
    #[default]
    None,
    /// Collect events in order.
    Events(Vec<SimEvent>),
}

impl SimLog {
    /// Creates a collecting log.
    pub fn collecting() -> Self {
        SimLog::Events(Vec::new())
    }

    /// Records an event (no-op for [`SimLog::None`]).
    #[inline]
    pub fn push(&mut self, event: SimEvent) {
        if let SimLog::Events(v) = self {
            v.push(event);
        }
    }

    /// The collected events (empty for [`SimLog::None`]).
    pub fn events(&self) -> &[SimEvent] {
        match self {
            SimLog::None => &[],
            SimLog::Events(v) => v,
        }
    }

    /// Renders the timeline as one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in self.events() {
            let _ = match *e {
                SimEvent::StageStarted { stage, at } => {
                    writeln!(out, "[{at:10.1}s] stage {} started", stage.0)
                }
                SimEvent::NodeFailed { stage, node, at, resumes_at, lost } => writeln!(
                    out,
                    "[{at:10.1}s] node {node} FAILED in stage {} \
                     (resumes {resumes_at:.1}s, {lost:.1}s lost)",
                    stage.0
                ),
                SimEvent::StageCompleted { stage, at } => {
                    writeln!(out, "[{at:10.1}s] stage {} completed", stage.0)
                }
                SimEvent::QueryRestarted { attempt, at } => {
                    writeln!(out, "[{at:10.1}s] QUERY RESTARTED (attempt {attempt})")
                }
                SimEvent::QueryCompleted { at } => writeln!(out, "[{at:10.1}s] query completed"),
                SimEvent::QueryAborted { at } => writeln!(out, "[{at:10.1}s] query ABORTED"),
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_log_discards() {
        let mut log = SimLog::None;
        log.push(SimEvent::QueryCompleted { at: 1.0 });
        assert!(log.events().is_empty());
    }

    #[test]
    fn collecting_log_keeps_order() {
        let mut log = SimLog::collecting();
        log.push(SimEvent::StageStarted { stage: CId(0), at: 0.0 });
        log.push(SimEvent::StageCompleted { stage: CId(0), at: 5.0 });
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[1].at(), 5.0);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut log = SimLog::collecting();
        log.push(SimEvent::StageStarted { stage: CId(3), at: 0.0 });
        log.push(SimEvent::NodeFailed {
            stage: CId(3),
            node: 2,
            at: 4.5,
            resumes_at: 5.5,
            lost: 4.5,
        });
        log.push(SimEvent::QueryAborted { at: 9.0 });
        let s = log.render();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("node 2 FAILED in stage 3"));
        assert!(s.contains("ABORTED"));
    }
}
