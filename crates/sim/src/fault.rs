//! Shared fault-schedule types for whole-system simulation.
//!
//! A [`FaultSchedule`] is the serialized middle of the simulation
//! harness's pipeline: one seed deterministically derives a workload and
//! a schedule, the schedule is injected into a real engine run (kills
//! through the engine's `FailureInjector` interrupt path, storage faults
//! through the `FaultStore` decorator), and a failing schedule is what
//! the shrinker minimizes and the bug base replays. The types live here —
//! next to the discrete-event simulator's own [`crate::event::SimEvent`]
//! vocabulary — so every layer that speaks "what went wrong, where"
//! shares one definition without depending on the harness itself.
//!
//! Faults are addressed by *logical* coordinates, the same convention as
//! the engine's failure injector: `(stage, node, attempt)` for kills,
//! `(op, node)` slots plus an access ordinal for storage faults. Logical
//! coordinates are what make replay exact; wall-clock timestamps would
//! make every schedule flaky by construction. Virtual time still flows
//! through a schedule: [`FaultEvent::DelayIo`] advances the process
//! [`VirtualClock`](ftpde_obs::sync::clock) on access, so stragglers
//! stretch observed stage spans without a single real sleep.

use serde::{Deserialize, Serialize};

/// One injected fault, at a logical coordinate.
///
/// Serializes externally tagged (`{"KillNode": {...}}`) — the one enum
/// representation the workspace's offline serde derive supports — which
/// is the wire format of [`FaultSchedule`] entries in the bug base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Kill `node` during its `attempt`-th execution of the sub-plan
    /// rooted at `stage` (the engine's interrupt path).
    KillNode {
        /// Root operator id of the stage being executed.
        stage: u32,
        /// Node to kill.
        node: u32,
        /// Which execution attempt of that `(stage, node)` dies.
        attempt: u32,
    },
    /// The next write to slot `(op, node)` is committed torn: metadata
    /// says present, the first read finds it corrupt, demotes the slot
    /// and reports a corruption (the §2.2 rewind trigger).
    TornWrite {
        /// Producing operator id of the slot.
        op: u32,
        /// Partition (node index) of the slot.
        node: u32,
    },
    /// The `nth_get`-th read of slot `(op, node)` after arming fails its
    /// checksum: the slot is demoted and a corruption reported.
    /// `nth_get = 0` fails the coordinator's pre-check; higher ordinals
    /// reach the worker-side read and exercise the lost-input path.
    CorruptRead {
        /// Producing operator id of the slot.
        op: u32,
        /// Partition (node index) of the slot.
        node: u32,
        /// Zero-based ordinal of the read that fails.
        nth_get: u32,
    },
    /// The next write to slot `(op, node)` is silently lost: the store
    /// accepts it and drops it, so consumers find the slot absent (a
    /// failed I/O that the device never surfaced).
    LostPut {
        /// Producing operator id of the slot.
        op: u32,
        /// Partition (node index) of the slot.
        node: u32,
    },
    /// Each of the next `uses` accesses of slot `(op, node)` advances
    /// the virtual clock by `virtual_ms` — a straggling device, in
    /// virtual time only.
    DelayIo {
        /// Producing operator id of the slot.
        op: u32,
        /// Partition (node index) of the slot.
        node: u32,
        /// Virtual milliseconds added per access.
        virtual_ms: u32,
        /// How many accesses straggle.
        uses: u32,
    },
}

impl FaultEvent {
    /// Whether this fault is injected through the storage decorator
    /// (as opposed to the engine's interrupt path).
    pub fn is_store_fault(&self) -> bool {
        !matches!(self, FaultEvent::KillNode { .. })
    }

    /// The `(op, node)` slot a storage fault targets; `None` for kills.
    pub fn slot(&self) -> Option<(u32, u32)> {
        match *self {
            FaultEvent::KillNode { .. } => None,
            FaultEvent::TornWrite { op, node }
            | FaultEvent::CorruptRead { op, node, .. }
            | FaultEvent::LostPut { op, node }
            | FaultEvent::DelayIo { op, node, .. } => Some((op, node)),
        }
    }

    /// A compact single-line rendering, for reports and shrink logs.
    pub fn describe(&self) -> String {
        match *self {
            FaultEvent::KillNode { stage, node, attempt } => {
                format!("kill stage {stage} node {node} attempt {attempt}")
            }
            FaultEvent::TornWrite { op, node } => format!("torn write op {op} node {node}"),
            FaultEvent::CorruptRead { op, node, nth_get } => {
                format!("corrupt read op {op} node {node} get {nth_get}")
            }
            FaultEvent::LostPut { op, node } => format!("lost put op {op} node {node}"),
            FaultEvent::DelayIo { op, node, virtual_ms, uses } => {
                format!("delay op {op} node {node} {virtual_ms}ms x{uses}")
            }
        }
    }
}

/// An ordered list of faults to inject into one run.
///
/// Order matters only for faults targeting the same slot (they arm in
/// sequence); the shrinker treats the list as the unit of minimization:
/// drop events, advance their ordinals toward zero, and merge duplicates
/// until no single removal still reproduces the failure.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The faults, in arming order.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (the failure-free reference run).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The kills, in the engine injector's coordinate type (as tuples —
    /// the engine's `Injection` stays an engine type).
    pub fn kills(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.events.iter().filter_map(|e| match *e {
            FaultEvent::KillNode { stage, node, attempt } => Some((stage, node, attempt)),
            _ => None,
        })
    }

    /// The storage faults, in arming order.
    pub fn store_faults(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(|e| e.is_store_fault())
    }

    /// Removes exact duplicate events, keeping first occurrences — the
    /// shrinker's "merge" move (arming the same fault twice either has
    /// no extra effect or only prolongs recovery).
    pub fn dedup(&self) -> Self {
        let mut seen = Vec::new();
        for e in &self.events {
            if !seen.contains(e) {
                seen.push(*e);
            }
        }
        FaultSchedule { events: seen }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultSchedule {
        FaultSchedule {
            events: vec![
                FaultEvent::KillNode { stage: 4, node: 1, attempt: 0 },
                FaultEvent::TornWrite { op: 2, node: 0 },
                FaultEvent::CorruptRead { op: 2, node: 1, nth_get: 1 },
                FaultEvent::LostPut { op: 6, node: 2 },
                FaultEvent::DelayIo { op: 2, node: 0, virtual_ms: 40, uses: 2 },
            ],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let s = sample();
        let text = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&text).unwrap();
        assert_eq!(s, back);
        // The tagged representation is stable enough to hand-read.
        assert!(text.contains("\"KillNode\":{\"stage\":4"), "{text}");
        assert!(text.contains("\"CorruptRead\":{"), "{text}");
    }

    #[test]
    fn accessors_partition_kills_and_store_faults() {
        let s = sample();
        assert_eq!(s.kills().collect::<Vec<_>>(), vec![(4, 1, 0)]);
        assert_eq!(s.store_faults().count(), 4);
        assert_eq!(s.events[1].slot(), Some((2, 0)));
        assert_eq!(s.events[0].slot(), None);
        assert!(!s.events[0].is_store_fault());
        assert!(s.events[4].is_store_fault());
    }

    #[test]
    fn dedup_merges_exact_duplicates_preserving_order() {
        let mut s = sample();
        s.events.push(FaultEvent::TornWrite { op: 2, node: 0 });
        s.events.push(FaultEvent::KillNode { stage: 4, node: 1, attempt: 0 });
        let d = s.dedup();
        assert_eq!(d, sample());
        assert!(!d.is_empty());
        assert_eq!(d.len(), 5);
        assert_eq!(FaultSchedule::empty().len(), 0);
    }

    #[test]
    fn describe_is_single_line_and_total() {
        for e in sample().events {
            let text = e.describe();
            assert!(!text.is_empty() && !text.contains('\n'), "{text}");
        }
    }
}
