//! The four fault-tolerance schemes compared in the paper's evaluation
//! (§5.2):
//!
//! * **all-mat** — Hadoop's strategy: every intermediate is materialized;
//!   recovery is fine-grained (only failed sub-plans restart).
//! * **no-mat (lineage)** — Spark/Shark's strategy: nothing is
//!   materialized; a failed node recomputes its sub-plan from base data
//!   (fine-grained recovery via lineage).
//! * **no-mat (restart)** — the classic parallel-database strategy:
//!   nothing is materialized and any mid-query failure restarts the whole
//!   query (coarse-grained recovery).
//! * **cost-based** — the paper's contribution: a cost-model-selected
//!   subset of intermediates is materialized; recovery is fine-grained.

use serde::{Deserialize, Serialize};

use ftpde_cluster::config::ClusterConfig;
use ftpde_core::config::MatConfig;
use ftpde_core::cost::CostParams;
use ftpde_core::dag::PlanDag;
use ftpde_core::error::Result;
use ftpde_core::prune::PruneOptions;
use ftpde_core::search::find_best_ft_plan;

/// How a scheme recovers from a mid-query failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recovery {
    /// Restart only the failed sub-plan on the failed node, from the last
    /// successfully materialized inputs.
    FineGrained,
    /// Restart the complete query from scratch.
    CoarseRestart,
}

/// A fault-tolerance scheme: a materialization policy plus a recovery mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Materialize every intermediate (Hadoop-style).
    AllMat,
    /// Materialize nothing; recover failed sub-plans via lineage
    /// recomputation (Spark-style).
    NoMatLineage,
    /// Materialize nothing; restart the whole query on failure
    /// (parallel-database-style).
    NoMatRestart,
    /// Materialize the cost-model-selected subset (this paper).
    CostBased,
}

impl Scheme {
    /// All four schemes, in the order the paper's figures list them.
    pub const ALL: [Scheme; 4] =
        [Scheme::AllMat, Scheme::NoMatLineage, Scheme::NoMatRestart, Scheme::CostBased];

    /// The display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::AllMat => "all-mat",
            Scheme::NoMatLineage => "no-mat (lineage)",
            Scheme::NoMatRestart => "no-mat (restart)",
            Scheme::CostBased => "cost-based",
        }
    }

    /// The recovery mode of this scheme.
    pub fn recovery(&self) -> Recovery {
        match self {
            Scheme::NoMatRestart => Recovery::CoarseRestart,
            _ => Recovery::FineGrained,
        }
    }

    /// Builds the cost-model parameters a scheme's optimizer sees for a
    /// given cluster: the **per-node** MTBF and MTTR with `CONST_cost = 1`
    /// (costs are seconds), exactly the statistics the paper feeds its
    /// optimizer (§5.1). Per-node is the right failure process under
    /// fine-grained recovery: a failure only loses the failed node's
    /// progress, and an operator's completion tracks the slowest node's
    /// renewal process (rate `1/MTBF`), not the cluster-wide first-failure
    /// process (rate `n/MTBF`) — which is also why the model is slightly
    /// optimistic (Figure 12a): it ignores the max over nodes.
    pub fn cost_params(cluster: &ClusterConfig) -> CostParams {
        CostParams::new(cluster.mtbf, cluster.mttr)
    }

    /// Selects the materialization configuration this scheme uses for
    /// `plan` on `cluster`.
    ///
    /// # Errors
    /// Propagates cost-model validation errors from the cost-based search.
    pub fn select_config(&self, plan: &PlanDag, cluster: &ClusterConfig) -> Result<MatConfig> {
        match self {
            Scheme::AllMat => Ok(MatConfig::all(plan)),
            Scheme::NoMatLineage | Scheme::NoMatRestart => Ok(MatConfig::none(plan)),
            Scheme::CostBased => {
                let params = Self::cost_params(cluster);
                let (best, _) = find_best_ft_plan(
                    std::slice::from_ref(plan),
                    &params,
                    &PruneOptions::default(),
                )?;
                Ok(best.config)
            }
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_core::dag::figure2_plan;

    fn cluster(mtbf: f64) -> ClusterConfig {
        ClusterConfig::new(10, mtbf, 1.0)
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<_> = Scheme::ALL.iter().map(Scheme::name).collect();
        assert_eq!(names, vec!["all-mat", "no-mat (lineage)", "no-mat (restart)", "cost-based"]);
    }

    #[test]
    fn recovery_modes() {
        assert_eq!(Scheme::AllMat.recovery(), Recovery::FineGrained);
        assert_eq!(Scheme::NoMatLineage.recovery(), Recovery::FineGrained);
        assert_eq!(Scheme::NoMatRestart.recovery(), Recovery::CoarseRestart);
        assert_eq!(Scheme::CostBased.recovery(), Recovery::FineGrained);
    }

    #[test]
    fn all_mat_materializes_everything_free() {
        let plan = figure2_plan();
        let cfg = Scheme::AllMat.select_config(&plan, &cluster(3600.0)).unwrap();
        assert_eq!(cfg.materialized_count(), plan.len());
    }

    #[test]
    fn no_mat_materializes_nothing() {
        let plan = figure2_plan();
        for s in [Scheme::NoMatLineage, Scheme::NoMatRestart] {
            let cfg = s.select_config(&plan, &cluster(3600.0)).unwrap();
            assert_eq!(cfg.materialized_count(), 0);
        }
    }

    #[test]
    fn cost_based_adapts_to_cluster_reliability() {
        let plan = figure2_plan();
        // Reliable cluster: no materialization.
        let reliable = Scheme::CostBased.select_config(&plan, &cluster(1e9)).unwrap();
        assert_eq!(reliable.materialized_count(), 0);
        // Very unreliable cluster (per-node MTBF = 4 s for ~8 s of work):
        // checkpoints appear.
        let flaky = Scheme::CostBased.select_config(&plan, &cluster(4.0)).unwrap();
        assert!(flaky.materialized_count() > 0);
    }

    #[test]
    fn cost_params_use_per_node_mtbf() {
        let c = cluster(3600.0);
        let p = Scheme::cost_params(&c);
        assert_eq!(p.mtbf_cost, 3600.0);
        assert_eq!(p.mttr_cost, 1.0);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Scheme::CostBased.to_string(), "cost-based");
    }
}
