//! Virtual-time execution of fault-tolerant plans against failure traces.
//!
//! The simulator mirrors the execution model of the paper's XDB setup
//! (§5.1): a plan is split into collapsed sub-plans at its materialization
//! points; each collapsed operator runs partition-parallel on all cluster
//! nodes and is a blocking barrier (consumers start only after its output
//! is fully materialized). A node failure during execution loses that
//! node's progress on its current sub-plan; after the mean time to repair
//! the sub-plan is redeployed on the node and re-executed from its inputs
//! (fine-grained recovery) — or, for the coarse `no-mat (restart)` scheme,
//! the whole query starts over.
//!
//! Simplifications follow the paper's footnote 6: per-partition durations
//! are uniform (no skew), concurrent collapsed operators do not contend
//! for resources, and materialized intermediates survive failures (§2.2).

use serde::{Deserialize, Serialize};

use ftpde_cluster::config::{ClusterConfig, Seconds};
use ftpde_cluster::trace::FailureTrace;
use ftpde_core::collapse::CollapsedPlan;
use ftpde_core::config::MatConfig;
use ftpde_core::cost::EstimateBreakdown;
use ftpde_core::dag::PlanDag;

use crate::event::{SimEvent, SimLog};
use crate::scheme::Recovery;

/// Tunables of the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// `CONST_pipe` used when collapsing the plan (Eq. 1); the paper's
    /// calibrated value is 1.0.
    pub pipe_const: f64,
    /// Coarse restarts after which the query is aborted; the paper aborts
    /// after 100 restarts (§5.2).
    pub max_restarts: u32,
    /// **Mid-operator checkpointing** (the paper's §7 future work): when
    /// set, every collapsed operator checkpoints its internal state every
    /// `interval` seconds, and a node failure only loses the progress
    /// since the node's last checkpoint instead of the whole sub-plan.
    /// Each checkpoint costs [`SimOptions::mid_op_checkpoint_cost`]
    /// seconds of extra runtime. Only affects fine-grained recovery.
    pub mid_op_checkpoint: Option<f64>,
    /// Cost of writing one mid-operator checkpoint, in seconds.
    pub mid_op_checkpoint_cost: f64,
    /// **Per-node skew** (the paper's §7 future work): multiplicative
    /// factors on each node's share of every operator (1.0 = uniform).
    /// Must have one entry per cluster node when set. Operator completion
    /// remains the max over nodes, so skew stretches the straggler.
    pub skew: Option<Vec<f64>>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            pipe_const: 1.0,
            max_restarts: 100,
            mid_op_checkpoint: None,
            mid_op_checkpoint_cost: 0.0,
            skew: None,
        }
    }
}

impl SimOptions {
    /// Enables mid-operator checkpointing every `interval` seconds at
    /// `cost` seconds per checkpoint.
    pub fn with_mid_op_checkpoints(mut self, interval: f64, cost: f64) -> Self {
        assert!(interval > 0.0 && cost >= 0.0);
        self.mid_op_checkpoint = Some(interval);
        self.mid_op_checkpoint_cost = cost;
        self
    }

    /// Sets per-node skew factors.
    pub fn with_skew(mut self, factors: Vec<f64>) -> Self {
        assert!(factors.iter().all(|&f| f > 0.0));
        self.skew = Some(factors);
        self
    }

    /// The duration of one node's share of a collapsed operator with
    /// nominal duration `dur`, including skew and checkpoint overhead.
    fn node_duration(&self, dur: f64, node: usize) -> f64 {
        let skewed = match &self.skew {
            Some(f) => dur * f[node],
            None => dur,
        };
        match self.mid_op_checkpoint {
            Some(interval) => {
                // Checkpoints strictly inside the work interval — one at
                // the very end would protect nothing.
                let checkpoints = ((skewed / interval).ceil() - 1.0).max(0.0);
                skewed + checkpoints * self.mid_op_checkpoint_cost
            }
            None => skewed,
        }
    }
}

/// Outcome of one simulated query execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Virtual completion time of the query, in seconds. For aborted runs
    /// this is the time at which the abort was declared.
    pub completion: Seconds,
    /// Coarse whole-query restarts (only the `no-mat (restart)` scheme
    /// produces these).
    pub restarts: u32,
    /// Fine-grained per-node sub-plan re-executions.
    pub node_retries: u64,
    /// `true` iff the query hit the restart limit and was aborted.
    pub aborted: bool,
    /// `true` iff simulated time ran past the trace's populated horizon —
    /// the tail of the run then saw no failures, so the result may be
    /// optimistic and the caller should regenerate with a longer horizon.
    pub horizon_exceeded: bool,
    /// Total recovery time charged to failures: for every node failure the
    /// repair window plus the re-executed (lost) work, and for every
    /// coarse restart the repair window plus the discarded attempt. This
    /// sums *serial* per-failure costs; since recovery on different nodes
    /// overlaps in wall-clock time it can exceed
    /// `completion - failure_free_makespan`.
    pub recovery_seconds: Seconds,
}

/// Failure-free makespan of `plan` under `config`: the critical-path
/// completion time of the collapsed plan including materialization costs
/// of materialized operators.
pub fn failure_free_makespan(plan: &PlanDag, config: &MatConfig, pipe_const: f64) -> Seconds {
    let pc = CollapsedPlan::collapse(plan, config, pipe_const);
    let mut completion = vec![0.0f64; pc.len()];
    let mut makespan: f64 = 0.0;
    for id in pc.op_ids() {
        let start = pc.inputs(id).iter().map(|i| completion[i.index()]).fold(0.0f64, f64::max);
        completion[id.index()] = start + pc.op(id).total_cost();
        makespan = makespan.max(completion[id.index()]);
    }
    makespan
}

/// The paper's baseline: pure query runtime with **no** extra
/// materializations and no failures (the denominator of every reported
/// overhead).
pub fn baseline_runtime(plan: &PlanDag, pipe_const: f64) -> Seconds {
    failure_free_makespan(plan, &MatConfig::none(plan), pipe_const)
}

/// Simulates one execution of the fault-tolerant plan `[plan, config]` on
/// `cluster` against `trace`.
pub fn simulate(
    plan: &PlanDag,
    config: &MatConfig,
    recovery: Recovery,
    cluster: &ClusterConfig,
    trace: &FailureTrace,
    opts: &SimOptions,
) -> SimResult {
    simulate_logged(plan, config, recovery, cluster, trace, opts, &mut SimLog::None)
}

/// Like [`simulate`], additionally mirroring the timeline into an
/// observability [`Recorder`](ftpde_obs::Recorder) as `"sim"`-category
/// events with *simulated* timestamps (stage spans, failure / restart /
/// termination instants). With a disabled recorder no timeline is even
/// collected.
///
/// When `pred` carries the cost model's estimate of this very plan
/// (see [`ftpde_core::cost::FtEstimate::breakdown`]), stage spans are
/// tagged with their predicted costs and a `plan_estimate` instant with
/// the dominant-path prediction is emitted, making the trace
/// self-contained for offline calibration
/// ([`ftpde_obs::CalibrationReport`], `ftpde obs --trace`).
#[allow(clippy::too_many_arguments)]
pub fn simulate_traced(
    plan: &PlanDag,
    config: &MatConfig,
    recovery: Recovery,
    cluster: &ClusterConfig,
    trace: &FailureTrace,
    opts: &SimOptions,
    pred: Option<&EstimateBreakdown>,
    rec: &dyn ftpde_obs::Recorder,
) -> SimResult {
    let mut log = if rec.enabled() { SimLog::collecting() } else { SimLog::None };
    let result = simulate_logged(plan, config, recovery, cluster, trace, opts, &mut log);
    if let Some(p) = pred {
        rec.record_with(|| {
            ftpde_obs::Event::instant("plan_estimate", "sim", 0)
                .arg("pred_cost_s", p.dominant_cost)
                .arg("pred_runtime_s", p.dominant_runtime)
        });
    }
    log.record_into_with(rec, pred);
    result
}

/// Like [`simulate`], additionally emitting a timeline of events into
/// `log` (pass [`SimLog::collecting`] to capture it).
#[allow(clippy::too_many_arguments)]
pub fn simulate_logged(
    plan: &PlanDag,
    config: &MatConfig,
    recovery: Recovery,
    cluster: &ClusterConfig,
    trace: &FailureTrace,
    opts: &SimOptions,
    log: &mut SimLog,
) -> SimResult {
    debug_assert_eq!(trace.nodes(), cluster.nodes);
    let result = match recovery {
        Recovery::FineGrained => simulate_fine_grained(plan, config, cluster, trace, opts, log),
        Recovery::CoarseRestart => simulate_coarse_restart(plan, config, cluster, trace, opts, log),
    };
    log.push(if result.aborted {
        SimEvent::QueryAborted { at: result.completion }
    } else {
        SimEvent::QueryCompleted { at: result.completion }
    });
    // Always-on metrics: every simulated execution is visible in the
    // process-global registry, recorder or not. Durations here are
    // *virtual* seconds (simulated time), not wall clock.
    let g = ftpde_obs::global();
    g.counter_add("sim.runs_total", 1);
    g.counter_add("sim.node_retries_total", result.node_retries);
    g.counter_add("sim.restarts_total", u64::from(result.restarts));
    if result.aborted {
        g.counter_add("sim.aborts_total", 1);
    }
    if result.horizon_exceeded {
        g.counter_add("sim.horizon_exceeded_total", 1);
    }
    g.observe("sim.completion_virtual_seconds", result.completion);
    g.observe("sim.recovery_virtual_seconds", result.recovery_seconds);
    result
}

fn simulate_fine_grained(
    plan: &PlanDag,
    config: &MatConfig,
    cluster: &ClusterConfig,
    trace: &FailureTrace,
    opts: &SimOptions,
    log: &mut SimLog,
) -> SimResult {
    let pc = CollapsedPlan::collapse(plan, config, opts.pipe_const);
    let mut completion = vec![0.0f64; pc.len()];
    let mut node_retries = 0u64;
    let mut horizon_exceeded = false;
    let mut query_end: f64 = 0.0;
    let mut recovery_seconds = 0.0f64;

    for id in pc.op_ids() {
        let start = pc.inputs(id).iter().map(|i| completion[i.index()]).fold(0.0f64, f64::max);
        let dur = pc.op(id).total_cost();
        log.push(SimEvent::StageStarted { stage: id, at: start });
        let mut op_end = start; // zero-duration operators finish instantly
        for node in 0..cluster.nodes {
            let total = opts.node_duration(dur, node);
            let times = trace.failures_of(node);
            let mut idx = times.partition_point(|&x| x < start);
            let mut t = start;
            // Wall-clock progress that survives failures (only nonzero
            // with mid-operator checkpointing enabled).
            let mut done = 0.0f64;
            loop {
                let end = t + (total - done);
                if end > trace.horizon() {
                    horizon_exceeded = true;
                }
                // Failures while the node was being repaired are absorbed
                // by the repair (the node is down anyway).
                while idx < times.len() && times[idx] < t {
                    idx += 1;
                }
                if idx < times.len() && times[idx] < end {
                    node_retries += 1;
                    let progressed = done + (times[idx] - t);
                    if let Some(interval) = opts.mid_op_checkpoint {
                        // Keep everything up to the last completed
                        // checkpoint boundary.
                        let chunk = interval + opts.mid_op_checkpoint_cost;
                        done = (progressed / chunk).floor() * chunk;
                    }
                    let lost = progressed - done;
                    recovery_seconds += cluster.mttr + lost;
                    log.push(SimEvent::NodeFailed {
                        stage: id,
                        node,
                        at: times[idx],
                        resumes_at: times[idx] + cluster.mttr,
                        lost,
                    });
                    t = times[idx] + cluster.mttr;
                    idx += 1;
                } else {
                    break;
                }
            }
            op_end = op_end.max(t + (total - done));
        }
        log.push(SimEvent::StageCompleted { stage: id, at: op_end });
        completion[id.index()] = op_end;
        query_end = query_end.max(op_end);
    }

    SimResult {
        completion: query_end,
        restarts: 0,
        node_retries,
        aborted: false,
        horizon_exceeded,
        recovery_seconds,
    }
}

fn simulate_coarse_restart(
    plan: &PlanDag,
    config: &MatConfig,
    cluster: &ClusterConfig,
    trace: &FailureTrace,
    opts: &SimOptions,
    log: &mut SimLog,
) -> SimResult {
    // One attempt takes the failure-free makespan under the scheme's
    // (empty) configuration; any failure anywhere in the cluster during an
    // attempt kills the whole query. Skew stretches the attempt to the
    // straggler node; mid-operator checkpoints cannot help a scheme that
    // discards all state on restart.
    let skew_max = opts.skew.as_ref().map_or(1.0, |f| f.iter().copied().fold(1.0, f64::max));
    let duration = failure_free_makespan(plan, config, opts.pipe_const) * skew_max;
    // Merge all nodes' failure times; any failure kills the whole attempt.
    let mut all: Vec<f64> =
        (0..trace.nodes()).flat_map(|n| trace.failures_of(n).iter().copied()).collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("finite failure times"));

    let mut t = 0.0f64;
    let mut idx = 0usize;
    let mut restarts = 0u32;
    let mut horizon_exceeded = false;
    let mut recovery_seconds = 0.0f64;
    loop {
        let end = t + duration;
        if end > trace.horizon() {
            horizon_exceeded = true;
        }
        // Failures during the repair window are absorbed by the repair.
        while idx < all.len() && all[idx] < t {
            idx += 1;
        }
        if idx < all.len() && all[idx] < end {
            restarts += 1;
            // The whole attempt so far is discarded, then the node repairs.
            recovery_seconds += (all[idx] - t) + cluster.mttr;
            t = all[idx] + cluster.mttr;
            idx += 1;
            log.push(SimEvent::QueryRestarted { attempt: restarts, at: t });
            if restarts >= opts.max_restarts {
                return SimResult {
                    completion: t,
                    restarts,
                    node_retries: 0,
                    aborted: true,
                    horizon_exceeded,
                    recovery_seconds,
                };
            }
        } else {
            return SimResult {
                completion: end,
                restarts,
                node_retries: 0,
                aborted: false,
                horizon_exceeded,
                recovery_seconds,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_core::dag::figure2_plan;
    use ftpde_core::operator::OpId;

    fn cluster(nodes: usize, mtbf: f64, mttr: f64) -> ClusterConfig {
        ClusterConfig::new(nodes, mtbf, mttr)
    }

    fn no_failures(c: &ClusterConfig) -> FailureTrace {
        FailureTrace::failure_free(c, 1e12)
    }

    /// scan(2) -> join(3) -> agg(1), tm = 1 each.
    fn chain_plan() -> PlanDag {
        let mut b = PlanDag::builder();
        let s = b.free("scan", 2.0, 1.0, &[]).unwrap();
        let j = b.free("join", 3.0, 1.0, &[s]).unwrap();
        b.free("agg", 1.0, 1.0, &[j]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn baseline_is_critical_path_without_materialization() {
        let plan = chain_plan();
        assert_eq!(baseline_runtime(&plan, 1.0), 6.0);
        // figure2: dominant chain scan S(1.6) + join(2) + repart(1) +
        // map(1.5) + reduce B(1.7) = 7.8.
        assert_eq!(baseline_runtime(&figure2_plan(), 1.0), 7.8);
    }

    #[test]
    fn makespan_includes_materialization_costs() {
        let plan = chain_plan();
        let all = MatConfig::all(&plan);
        // (2+1) + (3+1) + (1+1) = 9.
        assert_eq!(failure_free_makespan(&plan, &all, 1.0), 9.0);
    }

    #[test]
    fn failure_free_simulation_equals_makespan() {
        let plan = figure2_plan();
        let c = cluster(10, 3600.0, 1.0);
        let trace = no_failures(&c);
        for cfg in [MatConfig::none(&plan), MatConfig::all(&plan)] {
            for rec in [Recovery::FineGrained, Recovery::CoarseRestart] {
                let r = simulate(&plan, &cfg, rec, &c, &trace, &SimOptions::default());
                assert_eq!(r.completion, failure_free_makespan(&plan, &cfg, 1.0));
                assert_eq!(r.restarts, 0);
                assert_eq!(r.node_retries, 0);
                assert!(!r.aborted);
            }
        }
    }

    #[test]
    fn fine_grained_failure_delays_only_failed_node() {
        let plan = chain_plan();
        let c = cluster(2, 1e9, 0.5);
        let all = MatConfig::all(&plan);
        // Node 0 fails at t = 1.0 during the scan (duration 3 with tm).
        let trace = FailureTrace::from_times(vec![vec![1.0], vec![]], 1e9);
        let r = simulate(&plan, &all, Recovery::FineGrained, &c, &trace, &SimOptions::default());
        // Node 0: restart at 1.5, scan done at 4.5; node 1 done at 3.0.
        // Join starts at 4.5 (barrier), done 8.5; agg done 10.5.
        assert_eq!(r.completion, 10.5);
        assert_eq!(r.node_retries, 1);
        assert!(!r.aborted);
    }

    #[test]
    fn materialization_limits_recovery_scope() {
        // Same failure time, with vs without a checkpoint before it.
        let plan = chain_plan();
        let c = cluster(1, 1e9, 0.0);
        // Failure at t = 5.5.
        let trace = FailureTrace::from_times(vec![vec![5.5]], 1e9);
        // Nothing materialized: the whole chain (6.0) re-runs from 5.5.
        let none = MatConfig::none(&plan);
        let r_none =
            simulate(&plan, &none, Recovery::FineGrained, &c, &trace, &SimOptions::default());
        assert_eq!(r_none.completion, 5.5 + 6.0);
        // Scan materialized (done at 3.0): only join+agg re-run.
        let cfg = MatConfig::from_materialized_free_ops(&plan, &[OpId(0)]).unwrap();
        let r_ckpt =
            simulate(&plan, &cfg, Recovery::FineGrained, &c, &trace, &SimOptions::default());
        // scan+tm done at 3.0; join/agg group (3+1) runs 3.0..7.0, fails at
        // 5.5, re-runs 5.5..9.5.
        assert_eq!(r_ckpt.completion, 9.5);
        assert!(r_ckpt.completion < r_none.completion);
    }

    #[test]
    fn repeated_failures_accumulate() {
        let plan = chain_plan();
        let c = cluster(1, 1e9, 1.0);
        let none = MatConfig::none(&plan);
        let trace = FailureTrace::from_times(vec![vec![2.0, 8.0]], 1e9);
        let r = simulate(&plan, &none, Recovery::FineGrained, &c, &trace, &SimOptions::default());
        // Attempt 1: 0..6 fails at 2 → resume 3. Attempt 2: 3..9 fails at
        // 8 → resume 9. Attempt 3: 9..15 OK.
        assert_eq!(r.completion, 15.0);
        assert_eq!(r.node_retries, 2);
    }

    #[test]
    fn coarse_restart_restarts_everything() {
        let plan = chain_plan();
        let c = cluster(2, 1e9, 1.0);
        let none = MatConfig::none(&plan);
        // A failure on node 1 at t = 5.0 (during the 6 s attempt).
        let trace = FailureTrace::from_times(vec![vec![], vec![5.0]], 1e9);
        let r = simulate(&plan, &none, Recovery::CoarseRestart, &c, &trace, &SimOptions::default());
        assert_eq!(r.restarts, 1);
        assert_eq!(r.completion, 6.0 + 6.0); // restart at 6.0, finish at 12.0
        assert!(!r.aborted);
    }

    #[test]
    fn coarse_restart_aborts_at_limit() {
        let plan = chain_plan();
        let c = cluster(1, 1e9, 0.0);
        // A failure every 3 s forever (attempt needs 6 s).
        let times: Vec<f64> = (1..10_000).map(|i| i as f64 * 3.0).collect();
        let trace = FailureTrace::from_times(vec![times], 1e9);
        let r = simulate(
            &plan,
            &none_cfg(&plan),
            Recovery::CoarseRestart,
            &c,
            &trace,
            &SimOptions::default(),
        );
        assert!(r.aborted);
        assert_eq!(r.restarts, 100);
    }

    fn none_cfg(plan: &PlanDag) -> MatConfig {
        MatConfig::none(plan)
    }

    #[test]
    fn horizon_exceeded_is_flagged() {
        let plan = chain_plan();
        let c = cluster(1, 1e9, 0.0);
        let trace = FailureTrace::from_times(vec![vec![]], 4.0); // horizon < runtime
        let r = simulate(
            &plan,
            &none_cfg(&plan),
            Recovery::FineGrained,
            &c,
            &trace,
            &SimOptions::default(),
        );
        assert!(r.horizon_exceeded);
    }

    #[test]
    fn failure_exactly_at_completion_does_not_kill() {
        let plan = chain_plan();
        let c = cluster(1, 1e9, 0.0);
        let trace = FailureTrace::from_times(vec![vec![6.0]], 1e9);
        let r = simulate(
            &plan,
            &none_cfg(&plan),
            Recovery::FineGrained,
            &c,
            &trace,
            &SimOptions::default(),
        );
        assert_eq!(r.completion, 6.0);
        assert_eq!(r.node_retries, 0);
    }

    #[test]
    fn mid_operator_checkpoints_limit_lost_work() {
        // One node, one long operator (no materialization), failure late
        // in the run.
        let mut b = PlanDag::builder();
        b.free("long", 100.0, 0.0, &[]).unwrap();
        let plan = b.build().unwrap();
        let c = cluster(1, 1e9, 0.0);
        let none = MatConfig::none(&plan);
        let trace = FailureTrace::from_times(vec![vec![90.0]], 1e9);
        // Without checkpoints: all 90 s are lost → completion 190.
        let plain =
            simulate(&plan, &none, Recovery::FineGrained, &c, &trace, &SimOptions::default());
        assert_eq!(plain.completion, 190.0);
        // With free checkpoints every 10 s: only the last partial chunk is
        // lost → resume from 90 → completion 100.
        let opts = SimOptions::default().with_mid_op_checkpoints(10.0, 0.0);
        let ckpt = simulate(&plan, &none, Recovery::FineGrained, &c, &trace, &opts);
        assert_eq!(ckpt.completion, 100.0);
        assert_eq!(ckpt.node_retries, 1);
    }

    #[test]
    fn mid_operator_checkpoints_pay_their_cost() {
        let mut b = PlanDag::builder();
        b.free("long", 100.0, 0.0, &[]).unwrap();
        let plan = b.build().unwrap();
        let c = cluster(1, 1e9, 0.0);
        let none = MatConfig::none(&plan);
        let trace = FailureTrace::failure_free(&c, 1e9);
        // 9 interior checkpoints à 2 s on a failure-free run: pure overhead.
        let opts = SimOptions::default().with_mid_op_checkpoints(10.0, 2.0);
        let r = simulate(&plan, &none, Recovery::FineGrained, &c, &trace, &opts);
        assert_eq!(r.completion, 118.0);
    }

    #[test]
    fn mid_operator_checkpoint_recovery_respects_write_cost() {
        let mut b = PlanDag::builder();
        b.free("long", 100.0, 0.0, &[]).unwrap();
        let plan = b.build().unwrap();
        let c = cluster(1, 1e9, 0.0);
        let none = MatConfig::none(&plan);
        // total = 100 + 9·2 = 118 wall seconds (checkpoints at work
        // 10,20,…,90); chunk = 12 wall seconds. Failure at t = 30: two
        // full chunks survive (done = 24).
        let trace = FailureTrace::from_times(vec![vec![30.0]], 1e9);
        let opts = SimOptions::default().with_mid_op_checkpoints(10.0, 2.0);
        let r = simulate(&plan, &none, Recovery::FineGrained, &c, &trace, &opts);
        // completion = 30 (failure) + 0 (mttr) + (118 − 24) = 124.
        assert_eq!(r.completion, 124.0);
    }

    #[test]
    fn skew_stretches_the_straggler_node() {
        let plan = chain_plan(); // baseline 6.0 with no materialization
        let c = cluster(3, 1e9, 0.0);
        let none = MatConfig::none(&plan);
        let trace = FailureTrace::failure_free(&c, 1e9);
        let opts = SimOptions::default().with_skew(vec![1.0, 2.0, 1.0]);
        let r = simulate(&plan, &none, Recovery::FineGrained, &c, &trace, &opts);
        assert_eq!(r.completion, 12.0, "the 2x-skewed node determines the makespan");
        // Coarse restart attempts also take the straggler's duration.
        let r2 = simulate(&plan, &none, Recovery::CoarseRestart, &c, &trace, &opts);
        assert_eq!(r2.completion, 12.0);
    }

    #[test]
    fn skew_interacts_with_failures() {
        let plan = chain_plan();
        let c = cluster(2, 1e9, 0.0);
        let none = MatConfig::none(&plan);
        // Node 1 is 2x slower (12 s) and fails at t = 10.
        let trace = FailureTrace::from_times(vec![vec![], vec![10.0]], 1e9);
        let opts = SimOptions::default().with_skew(vec![1.0, 2.0]);
        let r = simulate(&plan, &none, Recovery::FineGrained, &c, &trace, &opts);
        assert_eq!(r.completion, 22.0); // 10 + 12
    }

    #[test]
    fn event_log_records_the_timeline() {
        use crate::event::{SimEvent, SimLog};
        let plan = chain_plan();
        let c = cluster(2, 1e9, 0.5);
        let all = MatConfig::all(&plan);
        let trace = FailureTrace::from_times(vec![vec![1.0], vec![]], 1e9);
        let mut log = SimLog::collecting();
        let r = simulate_logged(
            &plan,
            &all,
            Recovery::FineGrained,
            &c,
            &trace,
            &SimOptions::default(),
            &mut log,
        );
        let events = log.events();
        // 3 stages × (start + complete) + 1 failure + query completion.
        assert_eq!(events.len(), 8);
        assert!(matches!(events[0], SimEvent::StageStarted { at, .. } if at == 0.0));
        assert!(events
            .iter()
            .any(|e| matches!(e, SimEvent::NodeFailed { node: 0, at, .. } if *at == 1.0)));
        assert!(
            matches!(events.last().unwrap(), SimEvent::QueryCompleted { at } if *at == r.completion)
        );
        // Timestamps are plausible: every stage completion follows its start.
        let mut started = std::collections::HashMap::new();
        for e in events {
            match *e {
                SimEvent::StageStarted { stage, at } => {
                    started.insert(stage, at);
                }
                SimEvent::StageCompleted { stage, at } => {
                    assert!(at >= started[&stage]);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn event_log_records_coarse_restarts() {
        use crate::event::{SimEvent, SimLog};
        let plan = chain_plan();
        let c = cluster(1, 1e9, 1.0);
        let none = MatConfig::none(&plan);
        let trace = FailureTrace::from_times(vec![vec![5.0]], 1e9);
        let mut log = SimLog::collecting();
        simulate_logged(
            &plan,
            &none,
            Recovery::CoarseRestart,
            &c,
            &trace,
            &SimOptions::default(),
            &mut log,
        );
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::QueryRestarted { attempt: 1, at } if *at == 6.0)));
        assert!(!log.render().is_empty());
    }

    #[test]
    fn recovery_time_is_lost_work_plus_repair() {
        let plan = chain_plan();
        let c = cluster(2, 1e9, 0.5);
        let all = MatConfig::all(&plan);
        // Node 0 fails at t = 1.0 during the scan stage (started at 0):
        // 1.0 s of work lost + 0.5 s repair.
        let trace = FailureTrace::from_times(vec![vec![1.0], vec![]], 1e9);
        let r = simulate(&plan, &all, Recovery::FineGrained, &c, &trace, &SimOptions::default());
        assert_eq!(r.recovery_seconds, 1.5);
        // The single-failure case has no overlap, so the accounting equals
        // the wall-clock slowdown.
        assert_eq!(r.completion - failure_free_makespan(&plan, &all, 1.0), 1.5);
        // Failure-free runs charge nothing.
        let ok = simulate(
            &plan,
            &all,
            Recovery::FineGrained,
            &c,
            &no_failures(&c),
            &SimOptions::default(),
        );
        assert_eq!(ok.recovery_seconds, 0.0);
    }

    #[test]
    fn coarse_restart_charges_the_discarded_attempt() {
        let plan = chain_plan(); // 6 s attempt
        let c = cluster(2, 1e9, 1.0);
        let none = MatConfig::none(&plan);
        let trace = FailureTrace::from_times(vec![vec![], vec![5.0]], 1e9);
        let r = simulate(&plan, &none, Recovery::CoarseRestart, &c, &trace, &SimOptions::default());
        // 5 s of attempt discarded + 1 s repair.
        assert_eq!(r.recovery_seconds, 6.0);
    }

    #[test]
    fn checkpoints_shrink_the_lost_work_accounting() {
        let mut b = PlanDag::builder();
        b.free("long", 100.0, 0.0, &[]).unwrap();
        let plan = b.build().unwrap();
        let c = cluster(1, 1e9, 0.0);
        let none = MatConfig::none(&plan);
        let trace = FailureTrace::from_times(vec![vec![90.0]], 1e9);
        let plain =
            simulate(&plan, &none, Recovery::FineGrained, &c, &trace, &SimOptions::default());
        assert_eq!(plain.recovery_seconds, 90.0);
        let opts = SimOptions::default().with_mid_op_checkpoints(10.0, 0.0);
        let ckpt = simulate(&plan, &none, Recovery::FineGrained, &c, &trace, &opts);
        assert_eq!(ckpt.recovery_seconds, 0.0, "failure exactly on a checkpoint boundary");
    }

    #[test]
    fn traced_simulation_mirrors_the_timeline_into_a_recorder() {
        use ftpde_obs::{ArgValue, MemoryRecorder, NoopRecorder, Phase};

        let plan = chain_plan();
        let c = cluster(2, 1e9, 0.5);
        let all = MatConfig::all(&plan);
        let trace = FailureTrace::from_times(vec![vec![1.0], vec![]], 1e9);
        let rec = MemoryRecorder::new();
        let r = simulate_traced(
            &plan,
            &all,
            Recovery::FineGrained,
            &c,
            &trace,
            &SimOptions::default(),
            None,
            &rec,
        );
        let events = rec.events();
        // 3 stage spans + 1 failure instant + query completion instant.
        assert_eq!(events.len(), 5);
        let spans: Vec<_> = events.iter().filter(|e| e.phase == Phase::Span).collect();
        assert_eq!(spans.len(), 3);
        // Simulated timestamps in µs: the scan stage span covers 0..4.5 s.
        assert_eq!(spans[0].ts_us, 0);
        assert_eq!(spans[0].dur_us, 4_500_000);
        let failure = events.iter().find(|e| e.name == "node_failure").unwrap();
        assert_eq!(failure.ts_us, 1_000_000);
        assert_eq!(failure.get_arg("lost_s"), Some(&ArgValue::F64(1.0)));
        let done = events.iter().find(|e| e.name == "query_completed").unwrap();
        assert_eq!(done.ts_us, (r.completion * 1e6).round() as u64);
        // A disabled recorder costs nothing and changes nothing.
        let r2 = simulate_traced(
            &plan,
            &all,
            Recovery::FineGrained,
            &c,
            &trace,
            &SimOptions::default(),
            None,
            &NoopRecorder,
        );
        assert_eq!(r, r2);
    }

    #[test]
    fn traced_simulation_with_predictions_calibrates_to_zero_error() {
        use ftpde_core::cost::{estimate_ft_plan, CostParams};
        use ftpde_obs::{CalibrationReport, MemoryRecorder};

        // Self-consistency: feed the simulator the cost model's own
        // parameters on a failure-free run — every stage's observed
        // duration is exactly tr + tm, so calibration error is ~0.
        let plan = chain_plan();
        let c = cluster(2, 1e12, 0.5);
        let all = MatConfig::all(&plan);
        let params = CostParams::new(1e12, 0.5); // attempts ≈ 0
        let breakdown = estimate_ft_plan(&plan, &all, &params).breakdown(&params);
        let rec = MemoryRecorder::new();
        simulate_traced(
            &plan,
            &all,
            Recovery::FineGrained,
            &c,
            &no_failures(&c),
            &SimOptions::default(),
            Some(&breakdown),
            &rec,
        );
        let report = CalibrationReport::from_events(&rec.events());
        assert_eq!(report.stages.len(), 3);
        for s in &report.stages {
            assert!(
                s.rel_error.unwrap().abs() < 1e-6,
                "stage {} rel error {:?}",
                s.stage,
                s.rel_error
            );
            assert_eq!(s.failures, 0);
        }
        assert_eq!(report.queries.len(), 1);
        assert!(report.queries[0].rel_error.unwrap().abs() < 1e-6);
        assert!(report.stages.iter().all(|s| s.dominant), "a chain has one path");
    }

    #[test]
    fn recovery_by_stage_attributes_failures() {
        use ftpde_core::collapse::CId;

        let plan = chain_plan();
        let c = cluster(1, 1e9, 0.5);
        let all = MatConfig::all(&plan);
        // Stage 0 (scan, 0..3) fails at 1.0; stage 1 (join, starts after
        // scan) fails once more later.
        let trace = FailureTrace::from_times(vec![vec![1.0, 5.0]], 1e9);
        let mut log = SimLog::collecting();
        let r = simulate_logged(
            &plan,
            &all,
            Recovery::FineGrained,
            &c,
            &trace,
            &SimOptions::default(),
            &mut log,
        );
        let by_stage = log.recovery_by_stage();
        assert_eq!(by_stage.len(), 2);
        assert_eq!(by_stage[0].0, CId(0));
        let total: f64 = by_stage.iter().map(|(_, s)| s).sum();
        assert!((total - r.recovery_seconds).abs() < 1e-9);
    }

    #[test]
    fn pipe_const_shortens_collapsed_groups() {
        let plan = chain_plan();
        let none = MatConfig::none(&plan);
        let full = failure_free_makespan(&plan, &none, 1.0);
        let piped = failure_free_makespan(&plan, &none, 0.5);
        assert_eq!(full, 6.0);
        assert_eq!(piped, 3.0);
    }
}
