//! # ftpde-sim — discrete-event cluster simulator
//!
//! Executes fault-tolerant plans in virtual time against deterministic
//! failure traces, reproducing the evaluation methodology of the paper
//! (§5): collapsed sub-plans run partition-parallel on all nodes with
//! blocking materialization barriers; node failures interrupt the failed
//! node's sub-plan, which is redeployed after the MTTR (fine-grained
//! recovery) or restart the whole query (coarse recovery). The four
//! fault-tolerance schemes of the paper are provided by [`scheme::Scheme`].
//!
//! ```
//! use ftpde_cluster::prelude::*;
//! use ftpde_core::dag::figure2_plan;
//! use ftpde_sim::prelude::*;
//!
//! let plan = figure2_plan();
//! let cluster = ClusterConfig::paper_cluster(mtbf::DAY);
//! let horizon = suggested_horizon(&plan, &cluster, &SimOptions::default());
//! let traces = TraceSet::generate(&cluster, horizon, 10, 42);
//! let runs = run_all_schemes(&plan, &cluster, &traces, &SimOptions::default()).unwrap();
//! assert_eq!(runs.len(), 4);
//! ```

pub mod event;
pub mod fault;
pub mod metrics;
pub mod scheme;
pub mod simulate;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::event::{SimEvent, SimLog};
    pub use crate::fault::{FaultEvent, FaultSchedule};
    pub use crate::metrics::{
        overhead_pct, run_all_schemes, run_scheme, suggested_horizon, SchemeRun,
    };
    pub use crate::scheme::{Recovery, Scheme};
    pub use crate::simulate::{
        baseline_runtime, failure_free_makespan, simulate, simulate_logged, simulate_traced,
        SimOptions, SimResult,
    };
}
