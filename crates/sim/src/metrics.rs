//! Overhead metrics and multi-trace experiment execution.
//!
//! The paper reports, for every scheme, the *overhead*: the ratio of the
//! runtime under the scheme (materialization costs plus recovery costs
//! under injected failures) over the baseline (pure runtime, no extra
//! materializations, no failures), minus one, in percent (§5.2). Each
//! measurement averages ten failure traces; the same traces are replayed
//! against every scheme.

use serde::{Deserialize, Serialize};

use ftpde_cluster::config::{ClusterConfig, Seconds};
use ftpde_cluster::trace::TraceSet;
use ftpde_core::config::MatConfig;
use ftpde_core::dag::PlanDag;
use ftpde_core::error::{CoreError, Result};

use crate::scheme::Scheme;
use crate::simulate::{baseline_runtime, simulate, SimOptions, SimResult};

/// Overhead in percent of `completion` over `baseline`:
/// `(completion / baseline − 1) · 100`.
///
/// # Errors
/// [`CoreError::InvalidParameter`] if `baseline` is not strictly positive
/// (a zero or negative baseline makes the ratio meaningless).
pub fn overhead_pct(completion: Seconds, baseline: Seconds) -> Result<f64> {
    if baseline.is_nan() || baseline <= 0.0 {
        return Err(CoreError::InvalidParameter { what: "baseline runtime", value: baseline });
    }
    Ok((completion / baseline - 1.0) * 100.0)
}

/// Result of running one scheme over a trace set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeRun {
    /// The scheme that was executed.
    pub scheme: Scheme,
    /// The materialization configuration the scheme selected.
    pub config: MatConfig,
    /// Baseline runtime (no materialization, no failures), seconds.
    pub baseline: Seconds,
    /// Per-trace simulation results.
    pub runs: Vec<SimResult>,
}

impl SchemeRun {
    /// Mean overhead in percent over the **completed** (non-aborted) runs;
    /// `None` if every run aborted — the paper prints "Aborted" then — or
    /// if the baseline is invalid (not strictly positive).
    pub fn mean_overhead_pct(&self) -> Option<f64> {
        let completed: Vec<f64> = self
            .runs
            .iter()
            .filter(|r| !r.aborted)
            .filter_map(|r| overhead_pct(r.completion, self.baseline).ok())
            .collect();
        if completed.is_empty() {
            None
        } else {
            Some(completed.iter().sum::<f64>() / completed.len() as f64)
        }
    }

    /// `true` iff at least one trace led to an abort.
    pub fn any_aborted(&self) -> bool {
        self.runs.iter().any(|r| r.aborted)
    }

    /// `true` iff every trace led to an abort.
    pub fn all_aborted(&self) -> bool {
        !self.runs.is_empty() && self.runs.iter().all(|r| r.aborted)
    }

    /// Mean completion time over completed runs, seconds.
    pub fn mean_completion(&self) -> Option<Seconds> {
        let completed: Vec<f64> =
            self.runs.iter().filter(|r| !r.aborted).map(|r| r.completion).collect();
        if completed.is_empty() {
            None
        } else {
            Some(completed.iter().sum::<f64>() / completed.len() as f64)
        }
    }

    /// `true` iff any run outran its trace's populated horizon (results
    /// would then be optimistic; enlarge the horizon and re-run).
    pub fn any_horizon_exceeded(&self) -> bool {
        self.runs.iter().any(|r| r.horizon_exceeded)
    }
}

/// Runs `scheme` on `plan` over every trace in `traces` and collects the
/// results. The scheme selects its materialization configuration once (as
/// the paper's optimizer does, using the cluster statistics), then replays
/// each trace.
///
/// # Errors
/// Propagates configuration-selection errors (cost-based scheme only).
pub fn run_scheme(
    plan: &PlanDag,
    scheme: Scheme,
    cluster: &ClusterConfig,
    traces: &TraceSet,
    opts: &SimOptions,
) -> Result<SchemeRun> {
    let config = scheme.select_config(plan, cluster)?;
    let baseline = baseline_runtime(plan, opts.pipe_const);
    let runs = traces
        .iter()
        .map(|trace| simulate(plan, &config, scheme.recovery(), cluster, trace, opts))
        .collect();
    Ok(SchemeRun { scheme, config, baseline, runs })
}

/// Runs all four schemes over the same trace set (paired comparison, as in
/// the paper) and returns them in [`Scheme::ALL`] order.
pub fn run_all_schemes(
    plan: &PlanDag,
    cluster: &ClusterConfig,
    traces: &TraceSet,
    opts: &SimOptions,
) -> Result<Vec<SchemeRun>> {
    Scheme::ALL.iter().map(|&s| run_scheme(plan, s, cluster, traces, opts)).collect()
}

/// A generous trace horizon for simulating `plan` on `cluster`: covers the
/// coarse-restart worst case (`max_restarts` windows separated by cluster
/// failures) plus ample fine-grained retry slack.
pub fn suggested_horizon(plan: &PlanDag, cluster: &ClusterConfig, opts: &SimOptions) -> Seconds {
    let all_mat =
        crate::simulate::failure_free_makespan(plan, &MatConfig::all(plan), opts.pipe_const);
    let restart_worst =
        (opts.max_restarts as f64 + 2.0) * (all_mat + cluster.mttr + cluster.cluster_mtbf());
    let fine_worst = 400.0 * (all_mat + cluster.mttr);
    restart_worst.max(fine_worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_cluster::config::mtbf;
    use ftpde_core::dag::figure2_plan;

    fn scaled_figure2(factor: f64) -> PlanDag {
        let mut p = figure2_plan();
        for id in p.op_ids().collect::<Vec<_>>() {
            p.op_mut(id).run_cost *= factor;
            p.op_mut(id).mat_cost *= factor;
        }
        p
    }

    #[test]
    fn overhead_formula() {
        assert_eq!(overhead_pct(150.0, 100.0).unwrap(), 50.0);
        assert_eq!(overhead_pct(100.0, 100.0).unwrap(), 0.0);
        assert!((overhead_pct(905.33, 905.33).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn zero_or_negative_baseline_errors() {
        for baseline in [0.0, -1.0, f64::NAN] {
            match overhead_pct(1.0, baseline) {
                Err(CoreError::InvalidParameter { what: "baseline runtime", .. }) => {}
                other => panic!("baseline {baseline}: expected InvalidParameter, got {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_baseline_yields_no_mean_overhead() {
        let run = SchemeRun {
            scheme: Scheme::AllMat,
            config: MatConfig::none(&figure2_plan()),
            baseline: 0.0,
            runs: vec![SimResult {
                completion: 10.0,
                restarts: 0,
                node_retries: 0,
                aborted: false,
                horizon_exceeded: false,
                recovery_seconds: 0.0,
            }],
        };
        assert_eq!(run.mean_overhead_pct(), None);
    }

    #[test]
    fn reliable_cluster_all_schemes_close_to_baseline_except_all_mat() {
        // Scale the toy plan to ~minutes so MTTR is negligible.
        let plan = scaled_figure2(60.0);
        let cluster = ClusterConfig::paper_cluster(mtbf::WEEK);
        let horizon = suggested_horizon(&plan, &cluster, &SimOptions::default());
        let traces = TraceSet::generate(&cluster, horizon, 10, 7);
        let runs = run_all_schemes(&plan, &cluster, &traces, &SimOptions::default()).unwrap();
        let oh: Vec<f64> = runs.iter().map(|r| r.mean_overhead_pct().unwrap()).collect();
        // all-mat pays its materialization tax even without failures...
        assert!(oh[0] > 5.0, "all-mat overhead {}", oh[0]);
        // ...while both no-mat schemes and cost-based stay near zero.
        assert!(oh[1] < 5.0, "lineage overhead {}", oh[1]);
        assert!(oh[2] < 5.0, "restart overhead {}", oh[2]);
        assert!(oh[3] < 5.0, "cost-based overhead {}", oh[3]);
    }

    #[test]
    fn unreliable_cluster_cost_based_beats_or_matches_everyone() {
        let plan = scaled_figure2(240.0); // ~31 min baseline
        let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
        let horizon = suggested_horizon(&plan, &cluster, &SimOptions::default());
        let traces = TraceSet::generate(&cluster, horizon, 10, 11);
        let runs = run_all_schemes(&plan, &cluster, &traces, &SimOptions::default()).unwrap();
        let cost_based = runs[3].mean_overhead_pct().unwrap();
        for r in &runs[..3] {
            if let Some(o) = r.mean_overhead_pct() {
                assert!(
                    cost_based <= o * 1.15 + 5.0,
                    "{} = {o:.1}% vs cost-based {cost_based:.1}%",
                    r.scheme
                );
            } // None = aborted scheme, which clearly loses
        }
    }

    #[test]
    fn restart_scheme_aborts_on_hopeless_clusters() {
        // Query of ~31 min on a cluster failing every ~36 s somewhere.
        let plan = scaled_figure2(240.0);
        let cluster = ClusterConfig::paper_cluster(360.0);
        let horizon = suggested_horizon(&plan, &cluster, &SimOptions::default());
        let traces = TraceSet::generate(&cluster, horizon, 5, 3);
        let run =
            run_scheme(&plan, Scheme::NoMatRestart, &cluster, &traces, &SimOptions::default())
                .unwrap();
        assert!(run.all_aborted());
        assert_eq!(run.mean_overhead_pct(), None);
    }

    #[test]
    fn paired_traces_across_schemes() {
        let plan = scaled_figure2(60.0);
        let cluster = ClusterConfig::paper_cluster(mtbf::DAY);
        let horizon = suggested_horizon(&plan, &cluster, &SimOptions::default());
        let traces = TraceSet::generate(&cluster, horizon, 10, 5);
        let a =
            run_scheme(&plan, Scheme::AllMat, &cluster, &traces, &SimOptions::default()).unwrap();
        let b =
            run_scheme(&plan, Scheme::AllMat, &cluster, &traces, &SimOptions::default()).unwrap();
        assert_eq!(a, b, "same traces, same scheme → identical results");
    }

    #[test]
    fn horizon_is_sufficient_for_experiments() {
        let plan = scaled_figure2(240.0);
        let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
        let opts = SimOptions::default();
        let horizon = suggested_horizon(&plan, &cluster, &opts);
        let traces = TraceSet::generate(&cluster, horizon, 10, 13);
        for run in run_all_schemes(&plan, &cluster, &traces, &opts).unwrap() {
            assert!(
                !run.any_horizon_exceeded() || run.any_aborted(),
                "{} exceeded horizon",
                run.scheme
            );
        }
    }
}
