//! Loom models of the coordinator's recovery protocol.
//!
//! Compiled and run only under `RUSTFLAGS="--cfg loom"` (the CI `loom`
//! job): the `engine::sync` / `ftpde_store::sync` shims then route the
//! interrupt flag, retry counter and the real [`MemBackend`]'s mutex
//! through the loom model checker, and each `model` body below is
//! explored across many thread interleavings.
//!
//! Three interleaving families from the recovery protocol are modeled:
//!
//! 1. **Kill during batch** — under coarse recovery the first injected
//!    failure raises the stage's [`InterruptFlag`]; a sibling worker
//!    polling at batch boundaries must either finish cleanly *before*
//!    the flag is raised or observe it and abort — it must never publish
//!    output after observing the kill.
//! 2. **Rewind after corruption** — a reader racing a store `clear()`
//!    (the demotion/coarse-restart path) must see either the complete
//!    committed segment or a clean miss, never a torn state; a miss after
//!    a successful `contains` is legal (the lost-input rewind path the
//!    coordinator handles via `WorkerError::InputLost`).
//! 3. **Concurrent partition writers** — per-node workers materializing
//!    different partitions of the same operator concurrently (plus a
//!    replicated gather write) must leave the store with every segment
//!    visible and the logical/physical accounting exact.

#![cfg(loom)]

use ftpde_engine::sync::{AtomicU64, InterruptFlag, Ordering};
use ftpde_store::value::int_row;
use ftpde_store::{MemBackend, StoreBackend};
use loom::sync::Arc;
use loom::thread;

/// Worker B runs a 3-batch stage, polling the flag at each boundary as
/// `ops::ExecCtx::check` does; worker A is killed mid-batch and raises
/// the flag. B must never complete a batch after having observed the
/// kill.
#[test]
fn kill_during_batch() {
    loom::model(|| {
        let cancel = Arc::new(InterruptFlag::new());
        let published = Arc::new(AtomicU64::new(0));

        let killer = {
            let cancel = Arc::clone(&cancel);
            thread::spawn(move || {
                // Injected node failure: A dies and dooms the stage.
                cancel.set();
            })
        };
        let worker = {
            let cancel = Arc::clone(&cancel);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                let mut aborted = false;
                for _batch in 0..3 {
                    if cancel.is_set() {
                        aborted = true;
                        break;
                    }
                    // One batch of work produced.
                    published.fetch_add(1, Ordering::SeqCst);
                }
                // The abort is cooperative, so a batch already in flight
                // when the flag rises still completes — but nothing is
                // published *after* the worker observed the kill.
                if aborted {
                    assert!(
                        published.load(Ordering::SeqCst) < 3,
                        "worker kept publishing after observing the interrupt"
                    );
                }
                aborted
            })
        };

        killer.join().unwrap();
        let aborted = worker.join().unwrap();
        // Whatever the interleaving, the flag is latched by now; a
        // worker deployed after the failure aborts before batch 0.
        assert!(cancel.is_set());
        if !aborted {
            assert_eq!(published.load(Ordering::SeqCst), 3, "clean finish publishes all batches");
        }
    });
}

/// A reader races a `clear()` on the real `MemBackend`. Every
/// interleaving must yield either the full committed segment or a clean
/// miss; `contains == true` followed by `get == None` is an allowed
/// outcome (the demotion race `run_stage_on_node` maps to
/// `WorkerError::InputLost`), a torn or partial read is not.
#[test]
fn rewind_after_corruption() {
    loom::model(|| {
        let store = Arc::new(MemBackend::new());
        store.put(7, 0, vec![int_row(&[1]), int_row(&[2])]);

        let wiper = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                // Corruption demotion / coarse restart: the slot vanishes.
                store.clear();
            })
        };
        let reader = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let pre_checked = store.contains(7, 0);
                match store.get(7, 0) {
                    // All-or-nothing visibility: never a partial segment.
                    Some(rows) => assert_eq!(rows.len(), 2, "torn read"),
                    // A miss is always recoverable — even after a
                    // successful pre-check (the InputLost path).
                    None => assert!(pre_checked || !pre_checked),
                }
            })
        };

        wiper.join().unwrap();
        reader.join().unwrap();
        assert!(store.get(7, 0).is_none(), "clear is durable once joined");
    });
}

/// Two per-node workers materialize their partitions of operator 3 while
/// a gather result for operator 4 is replicated to both nodes. The store
/// must end with all four slots visible and exact accounting — the
/// logical/physical split is what the cost model's `tm(o)` calibration
/// reads, so a lost update here silently skews Eq. 1.
#[test]
fn concurrent_partition_writers() {
    loom::model(|| {
        let store = Arc::new(MemBackend::new());

        let writers: Vec<_> = (0..2usize)
            .map(|node| {
                let store = Arc::clone(&store);
                thread::spawn(move || {
                    store.put(3, node, vec![int_row(&[node as i64])]);
                })
            })
            .collect();
        let gather = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                store.put_replicated(4, vec![int_row(&[10]), int_row(&[11])], 2);
            })
        };

        for w in writers {
            w.join().unwrap();
        }
        gather.join().unwrap();

        assert_eq!(store.len(), 4, "2 partitions + 2 replicated targets");
        for node in 0..2 {
            assert_eq!(store.get(3, node).unwrap()[0], int_row(&[node as i64]));
        }
        let stats = store.stats();
        // 1 row per partition write + 2 rows × 2 targets replicated.
        assert_eq!(stats.logical_rows_written, 1 + 1 + 4);
        // Replication stores one physical copy.
        assert_eq!(stats.physical_rows_written, 1 + 1 + 2);
        assert_eq!(stats.segments_committed, 3);
    });
}
