//! Property-based tests of the execution engine's recovery machinery:
//! under arbitrary failure schedules and materialization configurations,
//! query results must be bit-identical to failure-free single-node runs.

use proptest::prelude::*;

use ftpde_core::collapse::CollapsedPlan;
use ftpde_core::config::MatConfig;
use ftpde_engine::coordinator::{run_query, EngineRecovery, RunOptions};
use ftpde_engine::failure::{FailureInjector, Injection};
use ftpde_engine::plan::EnginePlan;
use ftpde_engine::queries::{
    load_catalog, q1_engine_plan, q1c_engine_plan, q2c_engine_plan, q3_engine_plan, q5_engine_plan,
};
use ftpde_engine::table::Catalog;
use ftpde_store::value::Row;
use ftpde_tpch::datagen::Database;

const NODES: usize = 3;

fn catalog() -> Catalog {
    // One small deterministic database for all cases.
    load_catalog(&Database::generate(0.0003, 99), NODES)
}

type SinkResults = Vec<(ftpde_engine::plan::EOpId, Vec<Row>)>;

fn reference(plan: &EnginePlan, catalog: &Catalog) -> SinkResults {
    let single = load_catalog(&Database::generate(0.0003, 99), 1);
    let dag = plan.to_plan_dag();
    let r = run_query(
        plan,
        &MatConfig::none(&dag),
        &single,
        &FailureInjector::none(),
        &RunOptions::default(),
    );
    let _ = catalog;
    r.results
}

fn plan_by_index(i: u8) -> EnginePlan {
    match i % 5 {
        0 => q1_engine_plan(),
        1 => q3_engine_plan(),
        2 => q5_engine_plan(),
        3 => q2c_engine_plan(),
        _ => q1c_engine_plan(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fine-grained recovery under random failure schedules and random
    /// materialization configurations reproduces the reference result.
    #[test]
    fn random_failures_never_change_results(
        which in 0u8..5,
        mask in any::<u64>(),
        fail_p in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        let plan = plan_by_index(which);
        let dag = plan.to_plan_dag();
        let n = dag.free_count();
        let config = MatConfig::from_free_bits(&dag, mask & ((1u64 << n) - 1));
        let catalog = catalog();
        let expected = reference(&plan, &catalog);

        let stage_roots: Vec<u32> = {
            let pc = CollapsedPlan::collapse(&dag, &config, 1.0);
            pc.iter().map(|(_, c)| c.root.0).collect()
        };
        let injector = FailureInjector::random_first_attempts(&stage_roots, NODES, fail_p, seed);
        let report = run_query(&plan, &config, &catalog, &injector, &RunOptions::default());
        prop_assert_eq!(&report.results, &expected);
        prop_assert_eq!(report.node_retries, injector.fired().len() as u64);
        prop_assert!(!report.aborted);
    }

    /// Repeated failures on the same node (multiple attempts) still
    /// converge to the right answer.
    #[test]
    fn repeated_failures_on_one_node(
        which in 0u8..5,
        node in 0usize..NODES,
        attempts in 1u32..4,
    ) {
        let plan = plan_by_index(which);
        let dag = plan.to_plan_dag();
        let config = MatConfig::none(&dag);
        let catalog = catalog();
        let expected = reference(&plan, &catalog);
        let stage_roots: Vec<u32> = {
            let pc = CollapsedPlan::collapse(&dag, &config, 1.0);
            pc.iter().map(|(_, c)| c.root.0).collect()
        };
        let injections: Vec<Injection> = stage_roots
            .iter()
            .flat_map(|&s| (0..attempts).map(move |a| Injection { stage: s, node, attempt: a }))
            .collect();
        let injector = FailureInjector::with(injections);
        let report = run_query(&plan, &config, &catalog, &injector, &RunOptions::default());
        prop_assert_eq!(&report.results, &expected);
        prop_assert_eq!(report.node_retries, (stage_roots.len() as u32 * attempts) as u64);
    }

    /// Coarse restart under random single failures reproduces the
    /// reference result, counting one restart per injected failure.
    #[test]
    fn coarse_restart_correctness(
        which in 0u8..5,
        node in 0usize..NODES,
        restarts in 1u32..4,
    ) {
        let plan = plan_by_index(which);
        let dag = plan.to_plan_dag();
        let config = MatConfig::none(&dag);
        let catalog = catalog();
        let expected = reference(&plan, &catalog);
        // With no materialization the plan has one stage per sink; kill
        // the first `restarts` whole-query attempts at the first sink.
        let sink = plan.sinks()[0];
        let injector = FailureInjector::with(
            (0..restarts).map(|a| Injection { stage: sink.0, node, attempt: a }),
        );
        let opts = RunOptions { recovery: EngineRecovery::CoarseRestart, max_restarts: 50, ..Default::default() };
        let report = run_query(&plan, &config, &catalog, &injector, &opts);
        prop_assert!(!report.aborted);
        prop_assert_eq!(report.query_restarts, restarts);
        prop_assert_eq!(&report.results, &expected);
    }

    /// The materialized-row count is identical across failure schedules
    /// for all-mat (failures re-execute but the final stored state is the
    /// same set of intermediates; writes accumulate only on re-stores of
    /// interrupted stages' roots — which fine-grained retries do not redo
    /// for other nodes).
    #[test]
    fn partition_counts_scale(nodes in 1usize..6) {
        let plan = q3_engine_plan();
        let dag = plan.to_plan_dag();
        let catalog = load_catalog(&Database::generate(0.0003, 99), nodes);
        let report = run_query(
            &plan,
            &MatConfig::all(&dag),
            &catalog,
            &FailureInjector::none(),
            &RunOptions::default(),
        );
        // Same logical result regardless of the node count.
        let single = load_catalog(&Database::generate(0.0003, 99), 1);
        let expected = run_query(
            &plan,
            &MatConfig::all(&dag),
            &single,
            &FailureInjector::none(),
            &RunOptions::default(),
        );
        prop_assert_eq!(&report.results, &expected.results);
    }
}
