//! Scalar expressions: column references, literals, comparisons, boolean
//! connectives and arithmetic — enough for the evaluation queries'
//! predicates and derived values (e.g. `sum/count` averages, discounted
//! prices).

use ftpde_store::value::{Row, Value};

/// A scalar expression evaluated against a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The value of the `i`-th column.
    Col(usize),
    /// A literal.
    Lit(Value),
    /// Comparison of two sub-expressions; yields `Int(1)` or `Int(0)`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND of boolean (0/1) sub-expressions.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR of boolean (0/1) sub-expressions.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT of a boolean (0/1) sub-expression.
    Not(Box<Expr>),
    /// Arithmetic on two sub-expressions (float semantics if either side
    /// is a float, integer semantics otherwise).
    Arith(ArithOp, Box<Expr>, Box<Expr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` — always float division (the engine's only division use is
    /// deriving averages).
    Div,
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Integer literal.
    pub fn lit(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// Float literal.
    pub fn litf(v: f64) -> Expr {
        Expr::Lit(Value::Float(v))
    }

    /// `self <op> rhs`.
    pub fn cmp(self, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(rhs))
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs` (float).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// Evaluates the expression against `row`.
    pub fn eval(&self, row: &Row) -> Value {
        match self {
            Expr::Col(i) => row[*i],
            Expr::Lit(v) => *v,
            Expr::Cmp(op, l, r) => {
                let ord = l.eval(row).total_cmp(&r.eval(row));
                let b = match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                };
                Value::Int(b as i64)
            }
            Expr::And(l, r) => Value::Int((l.eval_bool(row) && r.eval_bool(row)) as i64),
            Expr::Or(l, r) => Value::Int((l.eval_bool(row) || r.eval_bool(row)) as i64),
            Expr::Not(e) => Value::Int(!e.eval_bool(row) as i64),
            Expr::Arith(op, l, r) => {
                let (a, b) = (l.eval(row), r.eval(row));
                match (op, a, b) {
                    (ArithOp::Div, a, b) => Value::Float(a.as_float() / b.as_float()),
                    (ArithOp::Add, Value::Int(x), Value::Int(y)) => Value::Int(x + y),
                    (ArithOp::Sub, Value::Int(x), Value::Int(y)) => Value::Int(x - y),
                    (ArithOp::Mul, Value::Int(x), Value::Int(y)) => Value::Int(x * y),
                    (ArithOp::Add, a, b) => Value::Float(a.as_float() + b.as_float()),
                    (ArithOp::Sub, a, b) => Value::Float(a.as_float() - b.as_float()),
                    (ArithOp::Mul, a, b) => Value::Float(a.as_float() * b.as_float()),
                }
            }
        }
    }

    /// Evaluates the expression as a boolean (non-zero = true).
    pub fn eval_bool(&self, row: &Row) -> bool {
        match self.eval(row) {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_store::value::int_row;

    #[test]
    fn comparisons() {
        let r = int_row(&[5, 10]);
        assert!(Expr::col(0).lt(Expr::col(1)).eval_bool(&r));
        assert!(Expr::col(0).le(Expr::lit(5)).eval_bool(&r));
        assert!(Expr::col(1).ge(Expr::lit(10)).eval_bool(&r));
        assert!(Expr::col(1).gt(Expr::lit(9)).eval_bool(&r));
        assert!(Expr::col(0).eq(Expr::lit(5)).eval_bool(&r));
        assert!(!Expr::col(0).eq(Expr::lit(6)).eval_bool(&r));
        assert!(Expr::col(0).cmp(CmpOp::Ne, Expr::lit(6)).eval_bool(&r));
    }

    #[test]
    fn boolean_connectives() {
        let r = int_row(&[1]);
        let t = Expr::lit(1);
        let f = Expr::lit(0);
        assert!(t.clone().and(t.clone()).eval_bool(&r));
        assert!(!t.clone().and(f.clone()).eval_bool(&r));
        assert!(t.clone().or(f.clone()).eval_bool(&r));
        assert!(!f.clone().or(f.clone()).eval_bool(&r));
        assert!(Expr::Not(Box::new(f)).eval_bool(&r));
        assert!(!Expr::Not(Box::new(t)).eval_bool(&r));
    }

    #[test]
    fn arithmetic() {
        let r = int_row(&[6, 4]);
        assert_eq!(
            Expr::Arith(ArithOp::Add, Box::new(Expr::col(0)), Box::new(Expr::col(1))).eval(&r),
            Value::Int(10)
        );
        assert_eq!(
            Expr::Arith(ArithOp::Sub, Box::new(Expr::col(0)), Box::new(Expr::col(1))).eval(&r),
            Value::Int(2)
        );
        assert_eq!(Expr::col(0).mul(Expr::col(1)).eval(&r), Value::Int(24));
        assert_eq!(Expr::col(0).div(Expr::col(1)).eval(&r), Value::Float(1.5));
    }

    #[test]
    fn mixed_type_arithmetic_widens() {
        let r: Row = vec![Value::Int(3), Value::Float(0.5)].into_boxed_slice();
        assert_eq!(Expr::col(0).mul(Expr::col(1)).eval(&r), Value::Float(1.5));
        assert!(Expr::col(1).lt(Expr::col(0)).eval_bool(&r));
    }

    #[test]
    fn float_comparison_against_int() {
        let r: Row = vec![Value::Float(2.0)].into_boxed_slice();
        assert!(Expr::col(0).eq(Expr::lit(2)).eval_bool(&r));
    }
}
