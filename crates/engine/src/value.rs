//! Runtime values and rows of the execution engine.
//!
//! These types now live in `ftpde-store` (the durable checkpoint
//! backends own their bit-exact on-media encoding, so the row model sits
//! next to the codec); this module re-exports them unchanged for the
//! engine's operators and every existing call site.

pub use ftpde_store::value::{int_row, row, Row, Value};
