//! Synchronization shim for the coordinator's recovery protocol: `std`
//! normally, `loom` under `--cfg loom`.
//!
//! The coordinator's concurrency surface is deliberately small — scoped
//! worker threads, a retry counter, a stage-local interrupt flag, and the
//! internally-synchronized [`ftpde_store::StoreBackend`] — and everything
//! shared crosses this module (or `ftpde_store::sync`), so the loom CI job
//! (`RUSTFLAGS="--cfg loom"`) model-checks the very primitives the
//! production build runs. The loom protocol models live in
//! `crates/engine/tests/loom.rs`: kill-during-batch, rewind-after-
//! corruption, and concurrent partition writers over the real
//! [`MemBackend`](ftpde_store::MemBackend).
//!
//! Scoped spawning itself stays on [`std::thread::scope`] in both builds:
//! loom threads are `'static` and cannot borrow the coordinator's stack,
//! so the models drive the shared state (flag + counter + store) through
//! loom threads rather than running the whole coordinator under the model.

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub use ftpde_store::sync::{Mutex, MutexGuard};

pub use ftpde_obs::sync::clock;

/// `std`/`parking_lot` primitives used identically in every build —
/// synchronization documented as outside the loom-modeled protocol
/// (worker scope handles, the failure injector's script lock). See
/// [`ftpde_obs::sync::plain`] for the rationale.
pub mod plain {
    pub use std::sync::Arc;
    pub use std::thread;

    pub use parking_lot::Mutex;
}

/// A cooperative cancellation flag shared by one stage's worker threads.
///
/// Under coarse-grained recovery the first injected node failure dooms the
/// whole stage — the query restarts regardless of what the surviving
/// workers produce. The coordinator sets this flag when a worker dies so
/// its siblings abort at their next batch boundary instead of completing
/// work the restart will discard (the engine analogue of the paper's
/// coordinator killing outstanding sub-plan deployments on restart).
#[derive(Debug, Default)]
pub struct InterruptFlag(AtomicBool);

impl InterruptFlag {
    /// A cleared flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent.
    pub fn set(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been raised. Workers poll this at row-batch
    /// boundaries (see `ops::ExecCtx`).
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn interrupt_flag_latches() {
        let f = InterruptFlag::new();
        assert!(!f.is_set());
        f.set();
        assert!(f.is_set());
        f.set();
        assert!(f.is_set(), "set is idempotent");
    }
}
