//! The fault-tolerant intermediate store.
//!
//! Models the paper's external fault-tolerant storage (§5.1's iSCSI
//! store): sub-plans write their output here, and the store **survives
//! node failures** — the key assumption of the paper's failure model
//! (§2.2). Recovery always restarts from the last materialized
//! intermediate found here.
//!
//! Since the `ftpde-store` crate the storage layer is pluggable: the
//! coordinator runs over any [`StoreBackend`] — the volatile
//! [`MemBackend`] (the historical engine behavior, and still the
//! default) or the durable [`DiskBackend`], whose manifest lets a
//! brand-new process resume a query across a real crash. Call sites
//! import the backend types from `ftpde_store` directly; this module
//! only keeps the engine-side pieces — the [`IntermediateStore`] alias,
//! the [`BACKEND_ENV`] selector and [`default_store`].

use ftpde_store::{DiskBackend, MemBackend, StoreBackend};

/// The engine's historical store type: the in-memory backend. Kept as
/// the one documented alias so long-standing call sites (and the paper
/// mapping "intermediate store" = §5.1's fault-tolerant storage) read
/// unchanged; everything else now names `ftpde_store` types directly.
pub type IntermediateStore = MemBackend;

/// Environment variable selecting the default backend for
/// [`crate::coordinator::run_query`]: `mem` (default) or `disk`
/// (an ephemeral [`DiskBackend`], removed on drop). CI uses this to run
/// the engine suite against both backends.
pub const BACKEND_ENV: &str = "FTPDE_STORE_BACKEND";

/// Builds the default store backend according to [`BACKEND_ENV`].
///
/// # Panics
/// Panics if the variable names an unknown backend or the ephemeral
/// disk directory cannot be created.
pub fn default_store() -> Box<dyn StoreBackend> {
    match std::env::var(BACKEND_ENV).as_deref() {
        Ok("disk") => Box::new(DiskBackend::ephemeral().expect("create ephemeral disk store")),
        Ok("mem") | Err(_) => Box::new(MemBackend::new()),
        Ok(other) => panic!("{BACKEND_ENV}={other}: unknown backend (use mem|disk)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_store::value::int_row;

    #[test]
    fn put_get_roundtrip() {
        let s = IntermediateStore::new();
        s.put(3, 1, vec![int_row(&[1]), int_row(&[2])]);
        assert!(s.contains(3, 1));
        assert!(!s.contains(3, 0));
        assert_eq!(s.get(3, 1).unwrap().len(), 2);
        assert!(s.get(4, 1).is_none());
    }

    #[test]
    fn replicated_put_is_visible_on_all_nodes() {
        let s = IntermediateStore::new();
        s.put_replicated(7, vec![int_row(&[9])], 4);
        for n in 0..4 {
            assert_eq!(s.get(7, n).unwrap()[0], int_row(&[9]));
        }
        // One physical copy, four logical targets.
        assert_eq!(s.stats().physical_rows_written, 1);
        assert_eq!(s.stats().logical_rows_written, 4);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn clear_discards_everything_but_keeps_write_counter() {
        let s = IntermediateStore::new();
        s.put(1, 0, vec![int_row(&[1])]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.stats().logical_rows_written, 1, "write accounting is cumulative");
    }

    #[test]
    fn overwrite_replaces() {
        let s = IntermediateStore::new();
        s.put(1, 0, vec![int_row(&[1])]);
        s.put(1, 0, vec![int_row(&[2]), int_row(&[3])]);
        assert_eq!(s.get(1, 0).unwrap().len(), 2);
    }

    #[test]
    fn default_store_is_in_memory() {
        // The env var is process-global; only assert the unset default.
        if std::env::var(BACKEND_ENV).is_err() {
            let s = default_store();
            s.put(1, 0, vec![int_row(&[5])]);
            assert!(s.contains(1, 0));
            assert_eq!(s.stats().fsyncs, 0);
        }
    }
}
