//! The fault-tolerant intermediate store.
//!
//! Models the paper's external iSCSI storage (§5.1): sub-plans write
//! their output here, and the store **survives node failures** — the key
//! assumption of the paper's failure model (§2.2). Recovery always
//! restarts from the last materialized intermediate found here.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::value::Row;

/// Key: (producing operator id, node/partition index).
type Key = (u32, usize);

/// A shared, thread-safe intermediate-result store.
#[derive(Debug, Default)]
pub struct IntermediateStore {
    inner: Mutex<HashMap<Key, Arc<Vec<Row>>>>,
    rows_written: Mutex<u64>,
}

impl IntermediateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a node-local partition of operator `op`'s output.
    pub fn put(&self, op: u32, node: usize, rows: Vec<Row>) {
        *self.rows_written.lock() += rows.len() as u64;
        self.inner.lock().insert((op, node), Arc::new(rows));
    }

    /// Stores a globally merged (replicated) result of operator `op`: the
    /// same data is visible on all `nodes` partitions.
    pub fn put_replicated(&self, op: u32, rows: Vec<Row>, nodes: usize) {
        *self.rows_written.lock() += rows.len() as u64;
        let shared = Arc::new(rows);
        let mut inner = self.inner.lock();
        for node in 0..nodes {
            inner.insert((op, node), Arc::clone(&shared));
        }
    }

    /// Fetches operator `op`'s output for `node`, if materialized.
    pub fn get(&self, op: u32, node: usize) -> Option<Arc<Vec<Row>>> {
        self.inner.lock().get(&(op, node)).cloned()
    }

    /// `true` iff operator `op` has a materialized partition for `node`.
    pub fn contains(&self, op: u32, node: usize) -> bool {
        self.inner.lock().contains_key(&(op, node))
    }

    /// Drops everything (a coarse whole-query restart discards all
    /// intermediate state).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Total rows ever written (materialization volume metric).
    pub fn rows_written(&self) -> u64 {
        *self.rows_written.lock()
    }

    /// Number of stored partitions.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` iff nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int_row;

    #[test]
    fn put_get_roundtrip() {
        let s = IntermediateStore::new();
        s.put(3, 1, vec![int_row(&[1]), int_row(&[2])]);
        assert!(s.contains(3, 1));
        assert!(!s.contains(3, 0));
        assert_eq!(s.get(3, 1).unwrap().len(), 2);
        assert!(s.get(4, 1).is_none());
    }

    #[test]
    fn replicated_put_is_visible_on_all_nodes() {
        let s = IntermediateStore::new();
        s.put_replicated(7, vec![int_row(&[9])], 4);
        for n in 0..4 {
            assert_eq!(s.get(7, n).unwrap()[0], int_row(&[9]));
        }
        // One logical write, shared storage.
        assert_eq!(s.rows_written(), 1);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn clear_discards_everything_but_keeps_write_counter() {
        let s = IntermediateStore::new();
        s.put(1, 0, vec![int_row(&[1])]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.rows_written(), 1, "write accounting is cumulative");
    }

    #[test]
    fn overwrite_replaces() {
        let s = IntermediateStore::new();
        s.put(1, 0, vec![int_row(&[1])]);
        s.put(1, 0, vec![int_row(&[2]), int_row(&[3])]);
        assert_eq!(s.get(1, 0).unwrap().len(), 2);
    }
}
