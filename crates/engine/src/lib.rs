//! # ftpde-engine — an in-process partition-parallel execution engine
//!
//! The engine-level substrate of the reproduction: real tuples, real
//! operators (scan, filter, project, hash join, hash aggregate), one
//! worker thread per simulated node, a fault-tolerant intermediate store,
//! and a coordinator that splits plans into sub-plans at their
//! materialization points, injects node failures, and recovers exactly as
//! the paper's XDB middleware does — fine-grained (redeploy the failed
//! sub-plan) or coarse-grained (restart the query).
//!
//! The engine validates the *correctness* of every recovery path (results
//! under failures are bit-identical to failure-free single-node runs);
//! the time-domain performance experiments run in the discrete-event
//! simulator (`ftpde-sim`), which scales to the paper's multi-hour
//! workloads.
//!
//! ```
//! use ftpde_engine::prelude::*;
//! use ftpde_core::config::MatConfig;
//! use ftpde_tpch::datagen::Database;
//!
//! let db = Database::generate(0.0002, 1);
//! let catalog = load_catalog(&db, 4);
//! let plan = q1_engine_plan();
//! let config = MatConfig::none(&plan.to_plan_dag());
//! let report = run_query(&plan, &config, &catalog, &FailureInjector::none(),
//!                        &RunOptions::default());
//! assert_eq!(report.results.len(), 1); // one sink: the per-flag aggregate
//! ```

pub mod coordinator;
pub mod expr;
pub mod failure;
pub mod ops;
pub mod plan;
pub mod queries;
pub mod store;
pub mod sync;
pub mod table;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::coordinator::{
        run_query, run_query_resumable, run_query_resumable_traced, run_query_traced,
        EngineRecovery, RunOptions, RunReport, StageTiming,
    };
    pub use crate::expr::{ArithOp, CmpOp, Expr};
    pub use crate::failure::{FailureInjector, Injection};
    pub use crate::ops::{execute, merge_partials, ExecCtx, Interrupted};
    pub use crate::plan::{Agg, AggFunc, EOpId, EngineOp, EnginePlan, OpKind};
    pub use crate::queries::{
        load_catalog, q1_engine_plan, q1c_engine_plan, q2c_engine_plan, q3_engine_plan,
        q5_engine_plan,
    };
    pub use crate::store::{default_store, IntermediateStore};
    pub use crate::sync::InterruptFlag;
    pub use crate::table::{hash_key, Catalog, Distribution, PartitionedTable};
    pub use ftpde_store::{
        int_row, row, DiskBackend, MemBackend, Row, StoreBackend, StoreStats, Value,
    };
}
