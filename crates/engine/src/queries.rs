//! TPC-H query plans for the execution engine, plus the catalog loader
//! that shards a generated [`Database`] the way the paper's cluster is
//! laid out (§5.1): LINEITEM and ORDERS hash-co-partitioned on `orderkey`,
//! everything else replicated (the micro-scale equivalent of RREF).
//!
//! Column layouts (fixed, documented here once):
//!
//! | table     | columns |
//! |-----------|---------|
//! | lineitem  | orderkey, suppkey, partkey, extendedprice, discount, quantity, returnflag, shipdate |
//! | orders    | orderkey, custkey, orderdate |
//! | customer  | custkey, nationkey, mktsegment |
//! | part      | partkey, size, typ |
//! | partsupp  | partkey, suppkey, supplycost |
//! | supplier  | suppkey, nationkey |
//! | nation    | nationkey, regionkey |
//! | region    | regionkey |

use ftpde_tpch::datagen::Database;

use crate::expr::Expr;
use crate::plan::{Agg, AggFunc, EnginePlan, OpKind};
use crate::table::{Catalog, PartitionedTable};
use ftpde_store::value::{int_row, Row};

/// Shards `db` over `nodes` worker nodes per the paper's layout.
pub fn load_catalog(db: &Database, nodes: usize) -> Catalog {
    let mut c = Catalog::new();
    let lineitem: Vec<Row> = db
        .lineitem
        .iter()
        .map(|l| {
            int_row(&[
                l.orderkey,
                l.suppkey,
                l.partkey,
                l.extendedprice,
                l.discount,
                l.quantity,
                l.returnflag,
                l.shipdate,
            ])
        })
        .collect();
    c.register(PartitionedTable::hash_partitioned("lineitem", lineitem, 0, nodes));

    let orders: Vec<Row> =
        db.orders.iter().map(|o| int_row(&[o.orderkey, o.custkey, o.orderdate])).collect();
    c.register(PartitionedTable::hash_partitioned("orders", orders, 0, nodes));

    let customer: Vec<Row> =
        db.customer.iter().map(|x| int_row(&[x.custkey, x.nationkey, x.mktsegment])).collect();
    c.register(PartitionedTable::replicated("customer", customer, nodes));

    let supplier: Vec<Row> =
        db.supplier.iter().map(|x| int_row(&[x.suppkey, x.nationkey])).collect();
    c.register(PartitionedTable::replicated("supplier", supplier, nodes));

    let part: Vec<Row> = db.part.iter().map(|x| int_row(&[x.partkey, x.size, x.typ])).collect();
    c.register(PartitionedTable::replicated("part", part, nodes));

    let partsupp: Vec<Row> =
        db.partsupp.iter().map(|x| int_row(&[x.partkey, x.suppkey, x.supplycost])).collect();
    c.register(PartitionedTable::replicated("partsupp", partsupp, nodes));

    let nation: Vec<Row> = db.nation.iter().map(|x| int_row(&[x.nationkey, x.regionkey])).collect();
    c.register(PartitionedTable::replicated("nation", nation, nodes));

    let region: Vec<Row> = db.region.iter().map(|x| int_row(&[x.regionkey])).collect();
    c.register(PartitionedTable::replicated("region", region, nodes));
    c
}

/// Q1: `σ(lineitem) → Γ` — sum/count of prices per return flag for early
/// shipments. Output: `[returnflag, sum(extendedprice), count]`.
pub fn q1_engine_plan() -> EnginePlan {
    let mut p = EnginePlan::new();
    let scan = p.add(
        "scan σ(lineitem)",
        OpKind::Scan {
            table: "lineitem".into(),
            filter: Some(Expr::col(7).le(Expr::lit(2400))), // shipdate
            project: Some(vec![6, 3]),                      // [returnflag, price]
        },
        &[],
    );
    p.add(
        "Γ per flag",
        OpKind::HashAgg {
            group_cols: vec![0],
            aggs: vec![
                Agg { func: AggFunc::Sum, expr: Expr::col(1) },
                Agg { func: AggFunc::Count, expr: Expr::lit(1) },
            ],
        },
        &[scan],
    );
    p.finish()
}

/// Q3: `(σ(customer) ⋈ σ(orders)) ⋈ σ(lineitem) → Γ` — revenue per order
/// for one market segment. Output: `[orderkey, sum(extendedprice)]`.
pub fn q3_engine_plan() -> EnginePlan {
    let mut p = EnginePlan::new();
    let c = p.add(
        "scan σ(customer)",
        OpKind::Scan {
            table: "customer".into(),
            filter: Some(Expr::col(2).eq(Expr::lit(0))), // mktsegment
            project: Some(vec![0]),                      // [custkey]
        },
        &[],
    );
    let o = p.add(
        "scan σ(orders)",
        OpKind::Scan {
            table: "orders".into(),
            filter: Some(Expr::col(2).lt(Expr::lit(1200))), // orderdate
            project: Some(vec![0, 1]),                      // [orderkey, custkey]
        },
        &[],
    );
    // → [c_custkey, o_orderkey, o_custkey]
    let j1 =
        p.add("⋈ C,O", OpKind::HashJoin { build_key: 0, probe_key: 1, residual: None }, &[c, o]);
    let l = p.add(
        "scan σ(lineitem)",
        OpKind::Scan {
            table: "lineitem".into(),
            filter: Some(Expr::col(7).gt(Expr::lit(1200))), // shipdate
            project: Some(vec![0, 3]),                      // [orderkey, price]
        },
        &[],
    );
    // → [c_custkey, o_orderkey, o_custkey, l_orderkey, price]
    let j2 =
        p.add("⋈ C,O,L", OpKind::HashJoin { build_key: 1, probe_key: 0, residual: None }, &[j1, l]);
    p.add(
        "Γ per order",
        OpKind::HashAgg {
            group_cols: vec![1],
            aggs: vec![Agg { func: AggFunc::Sum, expr: Expr::col(4) }],
        },
        &[j2],
    );
    p.finish()
}

/// Q5 (Figure 9): the left-deep chain
/// `σ(region) ⋈ nation ⋈ customer ⋈ σ(orders) ⋈ lineitem ⋈ supplier → Γ`
/// — revenue per nation where the supplier is in the customer's nation.
/// Output: `[nationkey, sum(extendedprice)]`.
pub fn q5_engine_plan() -> EnginePlan {
    let mut p = EnginePlan::new();
    let r = p.add(
        "scan σ(region)",
        OpKind::Scan {
            table: "region".into(),
            filter: Some(Expr::col(0).eq(Expr::lit(0))),
            project: None, // [regionkey]
        },
        &[],
    );
    let n = p.add(
        "scan nation",
        OpKind::Scan { table: "nation".into(), filter: None, project: None }, // [nk, rk]
        &[],
    );
    // → [r_rk, n_nk, n_rk]
    let j1 =
        p.add("⋈ R,N", OpKind::HashJoin { build_key: 0, probe_key: 1, residual: None }, &[r, n]);
    let c = p.add(
        "scan customer",
        OpKind::Scan { table: "customer".into(), filter: None, project: Some(vec![0, 1]) }, // [ck, nk]
        &[],
    );
    // → [r_rk, n_nk, n_rk, c_ck, c_nk]
    let j2 =
        p.add("⋈ R,N,C", OpKind::HashJoin { build_key: 1, probe_key: 1, residual: None }, &[j1, c]);
    let o = p.add(
        "scan σ(orders)",
        OpKind::Scan {
            table: "orders".into(),
            filter: Some(Expr::col(2).lt(Expr::lit(365))), // one year of orders
            project: Some(vec![0, 1]),                     // [ok, ck]
        },
        &[],
    );
    // → [r_rk, n_nk, n_rk, c_ck, c_nk, o_ok, o_ck]
    let j3 = p.add(
        "⋈ R,N,C,O",
        OpKind::HashJoin { build_key: 3, probe_key: 1, residual: None },
        &[j2, o],
    );
    let l = p.add(
        "scan lineitem",
        OpKind::Scan {
            table: "lineitem".into(),
            filter: None,
            project: Some(vec![0, 1, 3]), // [ok, sk, price]
        },
        &[],
    );
    // → [r_rk, n_nk, n_rk, c_ck, c_nk, o_ok, o_ck, l_ok, l_sk, price]
    let j4 = p.add(
        "⋈ R,N,C,O,L",
        OpKind::HashJoin { build_key: 5, probe_key: 0, residual: None },
        &[j3, l],
    );
    let s = p.add(
        "scan supplier",
        OpKind::Scan { table: "supplier".into(), filter: None, project: None }, // [sk, nk]
        &[],
    );
    // Supplier is the build side (small, replicated); j4's l_sk sits at
    // index 8, so the combined row is
    // [s_sk, s_nk, r_rk, n_nk, n_rk, c_ck, c_nk, o_ok, o_ck, l_ok, l_sk, price];
    // the residual enforces s_nationkey = c_nationkey.
    let j5 = p.add(
        "⋈ R,N,C,O,L,S",
        OpKind::HashJoin {
            build_key: 0,
            probe_key: 8,
            residual: Some(Expr::col(1).eq(Expr::col(6))),
        },
        &[s, j4],
    );
    p.add(
        "Γ per nation",
        OpKind::HashAgg {
            group_cols: vec![1],
            aggs: vec![Agg { func: AggFunc::Sum, expr: Expr::col(11) }],
        },
        &[j5],
    );
    p.finish()
}

/// Q1C: the nested Q1 variant — the inner per-flag average is computed
/// mid-plan (an always-materialized gather point in the engine), then
/// LINEITEM is re-scanned and items priced above their flag's average are
/// counted. Output: `[count]`.
pub fn q1c_engine_plan() -> EnginePlan {
    let mut p = EnginePlan::new();
    let scan1 = p.add(
        "scan σ(lineitem)",
        OpKind::Scan {
            table: "lineitem".into(),
            filter: Some(Expr::col(7).le(Expr::lit(2400))),
            project: Some(vec![6, 3]), // [flag, price]
        },
        &[],
    );
    let sums = p.add(
        "Γ avg (inner)",
        OpKind::HashAgg {
            group_cols: vec![0],
            aggs: vec![
                Agg { func: AggFunc::Sum, expr: Expr::col(1) },
                Agg { func: AggFunc::Count, expr: Expr::lit(1) },
            ],
        },
        &[scan1],
    );
    // → [flag, avg]
    let avg = p.add(
        "π avg",
        OpKind::Project { exprs: vec![Expr::col(0), Expr::col(1).div(Expr::col(2))] },
        &[sums],
    );
    let scan2 = p.add(
        "scan lineitem",
        OpKind::Scan { table: "lineitem".into(), filter: None, project: Some(vec![6, 3]) },
        &[],
    );
    // combined: [flag, avg, l_flag, l_price]; keep items above average.
    let join = p.add(
        "⋈ price > avg",
        OpKind::HashJoin {
            build_key: 0,
            probe_key: 0,
            residual: Some(Expr::col(3).gt(Expr::col(1))),
        },
        &[avg, scan2],
    );
    p.add(
        "Γ count",
        OpKind::HashAgg {
            group_cols: vec![],
            aggs: vec![Agg { func: AggFunc::Count, expr: Expr::lit(1) }],
        },
        &[join],
    );
    p.finish()
}

/// Q2C: the paper's DAG-structured variant of Q2 — the inner aggregation
/// query (min supply cost per part among the region's suppliers) is a CTE
/// consumed by **two** outer queries with different PART size filters.
/// Each sink returns the top-10 cheapest qualifying (part, supplier)
/// combinations. Output per sink:
/// `[cte_pk, cte_min, r_rk, n_nk, n_rk, s_sk, s_nk, p_pk, p_size, ps_pk, ps_sk, ps_cost]`.
pub fn q2c_engine_plan() -> EnginePlan {
    let mut p = EnginePlan::new();
    // Shared scans.
    let r = p.add(
        "scan σ(region)",
        OpKind::Scan {
            table: "region".into(),
            filter: Some(Expr::col(0).eq(Expr::lit(0))),
            project: None,
        },
        &[],
    );
    let n = p.add(
        "scan nation",
        OpKind::Scan { table: "nation".into(), filter: None, project: None },
        &[],
    );
    let s = p.add(
        "scan supplier",
        OpKind::Scan { table: "supplier".into(), filter: None, project: None }, // [sk, nk]
        &[],
    );
    let ps = p.add(
        "scan partsupp",
        OpKind::Scan { table: "partsupp".into(), filter: None, project: None }, // [pk, sk, cost]
        &[],
    );

    // Inner query: region's suppliers' partsupp entries → min cost per part.
    // i1 → [r_rk, n_nk, n_rk]
    let i1 =
        p.add("⋈ R,N", OpKind::HashJoin { build_key: 0, probe_key: 1, residual: None }, &[r, n]);
    // i2 → [r_rk, n_nk, n_rk, s_sk, s_nk]
    let i2 =
        p.add("⋈ R,N,S", OpKind::HashJoin { build_key: 1, probe_key: 1, residual: None }, &[i1, s]);
    // i3 → [..5, ps_pk, ps_sk, ps_cost]
    let i3 = p.add(
        "⋈ R,N,S,PS",
        OpKind::HashJoin { build_key: 3, probe_key: 1, residual: None },
        &[i2, ps],
    );
    // CTE → [partkey, min cost]; always-materialized gather point.
    let cte = p.add(
        "Γ min cost (CTE)",
        OpKind::HashAgg {
            group_cols: vec![5],
            aggs: vec![Agg { func: AggFunc::Min, expr: Expr::col(7) }],
        },
        &[i3],
    );

    // Two outer queries with different PART size filters.
    for (k, max_size) in [(1u8, 10i64), (2u8, 25i64)] {
        let scan_p = p.add(
            format!("scan σ{k}(part)"),
            OpKind::Scan {
                table: "part".into(),
                filter: Some(Expr::col(1).le(Expr::lit(max_size))),
                project: None, // [pk, size, typ]
            },
            &[],
        );
        // o1: parts ⋈ partsupp → [p_pk, p_size, p_typ, ps_pk, ps_sk, ps_cost]
        let o1 = p.add(
            format!("⋈{k} P,PS"),
            OpKind::HashJoin { build_key: 0, probe_key: 0, residual: None },
            &[scan_p, ps],
        );
        // Keep only width we need: [p_pk, ps_sk, ps_cost]
        let o1p = p.add(
            format!("π{k}"),
            OpKind::Project { exprs: vec![Expr::col(0), Expr::col(4), Expr::col(5)] },
            &[o1],
        );
        // o2: ⋈ supplier → [s_sk, s_nk, p_pk, ps_sk, ps_cost]
        let o2 = p.add(
            format!("⋈{k} P,PS,S"),
            OpKind::HashJoin { build_key: 0, probe_key: 1, residual: None },
            &[s, o1p],
        );
        // o3: restrict suppliers to the region by joining the (tiny) R⋈N
        // result on nationkey → [r_rk, n_nk, n_rk, s_sk, s_nk, p_pk, ps_sk, ps_cost]
        let o3 = p.add(
            format!("⋈{k} region suppliers"),
            OpKind::HashJoin { build_key: 1, probe_key: 1, residual: None },
            &[i1, o2],
        );
        // o4: match the CTE's min cost per part →
        // [cte_pk, cte_min, r_rk, n_nk, n_rk, s_sk, s_nk, p_pk, ps_sk, ps_cost];
        // the residual keeps only min-cost entries (ps_cost = cte_min).
        let o4 = p.add(
            format!("⋈{k} min-cost"),
            OpKind::HashJoin {
                build_key: 0,
                probe_key: 5,
                residual: Some(Expr::col(9).eq(Expr::col(1))),
            },
            &[cte, o3],
        );
        // Sink: 10 cheapest, deterministic order.
        p.add(format!("top10 ({k})"), OpKind::TopK { sort_col: 1, ascending: true, k: 10 }, &[o4]);
    }
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::{run_query, EngineRecovery, RunOptions, RunReport};
    use crate::failure::{FailureInjector, Injection};
    use ftpde_core::config::MatConfig;
    use ftpde_store::value::Value;

    // Big enough that the selective Q5/Q2C predicates keep a few rows at
    // any generator seed; at 0.0005 some seeds leave them empty.
    const SF: f64 = 0.001;

    fn db() -> Database {
        Database::generate(SF, 42)
    }

    fn run(
        plan: &EnginePlan,
        nodes: usize,
        config_bits: u64,
        injector: &FailureInjector,
        opts: &RunOptions,
    ) -> RunReport {
        let catalog = load_catalog(&db(), nodes);
        let dag = plan.to_plan_dag();
        let config = MatConfig::from_free_bits(&dag, config_bits);
        run_query(plan, &config, &catalog, injector, opts)
    }

    /// Single-node, failure-free run = ground truth.
    fn reference(plan: &EnginePlan) -> Vec<(crate::plan::EOpId, Vec<Row>)> {
        run(plan, 1, 0, &FailureInjector::none(), &RunOptions::default()).results
    }

    #[test]
    fn q1_partition_parallel_matches_single_node() {
        let plan = q1_engine_plan();
        let expected = reference(&plan);
        for nodes in [2, 4, 7] {
            let got = run(&plan, nodes, 0, &FailureInjector::none(), &RunOptions::default());
            assert_eq!(got.results, expected, "nodes = {nodes}");
        }
    }

    #[test]
    fn q1_results_are_plausible() {
        let plan = q1_engine_plan();
        let results = reference(&plan);
        assert_eq!(results.len(), 1);
        let rows = &results[0].1;
        assert_eq!(rows.len(), 3, "three return flags");
        for r in rows {
            assert!(r[2].as_int() > 0, "every flag has rows");
        }
    }

    #[test]
    fn q3_partition_parallel_matches_single_node() {
        let plan = q3_engine_plan();
        let expected = reference(&plan);
        let got = run(&plan, 4, 0b11, &FailureInjector::none(), &RunOptions::default());
        assert_eq!(got.results, expected);
        assert!(!expected[0].1.is_empty(), "Q3 must produce revenue rows");
    }

    #[test]
    fn q5_partition_parallel_matches_single_node() {
        let plan = q5_engine_plan();
        let expected = reference(&plan);
        for config_bits in [0u64, 0b11111] {
            let got = run(&plan, 4, config_bits, &FailureInjector::none(), &RunOptions::default());
            assert_eq!(got.results, expected, "config = {config_bits:#b}");
        }
        // Revenue per nation of one region: at most 5 nations.
        let rows = &expected[0].1;
        assert!(!rows.is_empty() && rows.len() <= 5, "{} nations", rows.len());
    }

    #[test]
    fn q1c_inner_average_is_global_not_per_node() {
        let plan = q1c_engine_plan();
        let expected = reference(&plan);
        let got = run(&plan, 4, 0, &FailureInjector::none(), &RunOptions::default());
        // If the engine aggregated per node without the global gather, the
        // counts would differ.
        assert_eq!(got.results, expected);
        let count = expected[0].1[0][0].as_int();
        assert!(count > 0);
    }

    #[test]
    fn q2c_dag_matches_single_node_and_has_two_sinks() {
        let plan = q2c_engine_plan();
        assert_eq!(plan.sinks().len(), 2);
        let expected = run(&plan, 1, 0, &FailureInjector::none(), &RunOptions::default());
        assert_eq!(expected.results.len(), 2);
        for (_, rows) in &expected.results {
            assert!(!rows.is_empty() && rows.len() <= 10, "top-10 sink");
            // Sorted ascending by min cost.
            for w in rows.windows(2) {
                assert!(w[0][1].as_int() <= w[1][1].as_int());
            }
            // Every surviving row matches its part's min cost.
            for r in rows {
                assert_eq!(r[9].as_int(), r[1].as_int(), "ps_cost == cte min");
            }
        }
        let got = run(&plan, 4, 0, &FailureInjector::none(), &RunOptions::default());
        assert_eq!(got.results, expected.results);
    }

    #[test]
    fn q2c_recovers_from_failures_on_both_sinks() {
        let plan = q2c_engine_plan();
        let expected = run(&plan, 1, 0, &FailureInjector::none(), &RunOptions::default());
        let dag = plan.to_plan_dag();
        // Materialize some of the outer joins; kill first attempts widely.
        let config_bits = 0b0101010101u64 & ((1 << dag.free_count()) - 1);
        let config = MatConfig::from_free_bits(&dag, config_bits);
        let stage_roots: Vec<u32> = {
            let pc = ftpde_core::collapse::CollapsedPlan::collapse(&dag, &config, 1.0);
            pc.iter().map(|(_, c)| c.root.0).collect()
        };
        let injector = FailureInjector::random_first_attempts(&stage_roots, 4, 0.6, 13);
        assert!(injector.planned_count() > 0);
        let catalog = load_catalog(&db(), 4);
        let got = run_query(&plan, &config, &catalog, &injector, &RunOptions::default());
        assert_eq!(got.results, expected.results);
        assert!(got.node_retries > 0);
    }

    #[test]
    fn top_k_operator_is_deterministic_across_node_counts() {
        let plan = q2c_engine_plan();
        let a = run(&plan, 2, 0, &FailureInjector::none(), &RunOptions::default());
        let b = run(&plan, 7, 0, &FailureInjector::none(), &RunOptions::default());
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn fine_grained_recovery_preserves_results() {
        let plan = q5_engine_plan();
        let expected = reference(&plan);
        let dag = plan.to_plan_dag();
        // Kill several nodes' first attempts across all stages, under
        // both extreme materialization configs.
        for config_bits in [0u64, 0b11111] {
            let config = MatConfig::from_free_bits(&dag, config_bits);
            let stage_roots: Vec<u32> = {
                let pc = ftpde_core::collapse::CollapsedPlan::collapse(&dag, &config, 1.0);
                pc.iter().map(|(_, c)| c.root.0).collect()
            };
            let injector = FailureInjector::random_first_attempts(&stage_roots, 4, 0.5, 7);
            assert!(injector.planned_count() > 0);
            let catalog = load_catalog(&db(), 4);
            let got = run_query(&plan, &config, &catalog, &injector, &RunOptions::default());
            assert_eq!(got.results, expected, "config = {config_bits:#b}");
            assert!(got.node_retries > 0, "failures must actually fire");
            assert_eq!(got.node_retries, injector.fired().len() as u64);
        }
    }

    #[test]
    fn coarse_restart_recovers_and_counts_restarts() {
        let plan = q3_engine_plan();
        let expected = reference(&plan);
        let dag = plan.to_plan_dag();
        let config = MatConfig::none(&dag);
        // Kill node 2 during the first whole-query attempt (attempt 0 of
        // the single collapsed stage rooted at the sink agg).
        let sink = plan.sinks()[0];
        let injector = FailureInjector::with([Injection { stage: sink.0, node: 2, attempt: 0 }]);
        let catalog = load_catalog(&db(), 4);
        let opts = RunOptions {
            recovery: EngineRecovery::CoarseRestart,
            max_restarts: 100,
            ..Default::default()
        };
        let got = run_query(&plan, &config, &catalog, &injector, &opts);
        assert_eq!(got.query_restarts, 1);
        assert!(!got.aborted);
        assert_eq!(got.results, expected);
    }

    #[test]
    fn coarse_restart_aborts_at_limit() {
        let plan = q1_engine_plan();
        let dag = plan.to_plan_dag();
        let config = MatConfig::none(&dag);
        let sink = plan.sinks()[0];
        // Kill every attempt up to the limit.
        let injector = FailureInjector::with((0..200).map(|a| Injection {
            stage: sink.0,
            node: 0,
            attempt: a,
        }));
        let catalog = load_catalog(&db(), 2);
        let opts = RunOptions {
            recovery: EngineRecovery::CoarseRestart,
            max_restarts: 10,
            ..Default::default()
        };
        let got = run_query(&plan, &config, &catalog, &injector, &opts);
        assert!(got.aborted);
        assert_eq!(got.query_restarts, 10);
        assert!(got.results.is_empty());
    }

    #[test]
    fn materialization_volume_depends_on_config() {
        let plan = q5_engine_plan();
        let none = run(&plan, 4, 0, &FailureInjector::none(), &RunOptions::default());
        let all = run(&plan, 4, 0b11111, &FailureInjector::none(), &RunOptions::default());
        assert!(
            all.rows_materialized > none.rows_materialized,
            "all-mat writes more intermediate rows ({} vs {})",
            all.rows_materialized,
            none.rows_materialized
        );
    }

    #[test]
    fn lineage_failure_recomputes_from_base_data() {
        // With nothing materialized, a failed node re-runs the entire
        // pipeline for its partition — and still gets the right answer.
        let plan = q3_engine_plan();
        let expected = reference(&plan);
        let sink = plan.sinks()[0];
        let injector = FailureInjector::with([
            Injection { stage: sink.0, node: 1, attempt: 0 },
            Injection { stage: sink.0, node: 1, attempt: 1 },
            Injection { stage: sink.0, node: 3, attempt: 0 },
        ]);
        let got = run(&plan, 4, 0, &injector, &RunOptions::default());
        assert_eq!(got.results, expected);
        assert_eq!(got.node_retries, 3);
    }

    #[test]
    fn resume_skips_surviving_stages() {
        use crate::coordinator::run_query_resumable;
        use crate::store::IntermediateStore;
        use ftpde_store::StoreBackend;
        let plan = q5_engine_plan();
        let dag = plan.to_plan_dag();
        let config = MatConfig::all(&dag);
        let catalog = load_catalog(&db(), 4);
        let store = IntermediateStore::new();

        // First submission: everything executes and is materialized.
        let first = run_query_resumable(
            &plan,
            &config,
            &catalog,
            &FailureInjector::none(),
            &RunOptions::default(),
            &store,
        );
        assert_eq!(first.stages_skipped, 0);
        assert!(!store.is_empty());

        // "Coordinator crash": re-submit against the surviving store. All
        // non-sink stages are skipped; any attempt to actually execute a
        // skipped stage would trip the poisoned injector below.
        let n_stages = {
            let pc = ftpde_core::collapse::CollapsedPlan::collapse(&dag, &config, 1.0);
            pc.len()
        };
        let sink = plan.sinks()[0];
        let poison: Vec<Injection> = plan
            .op_ids()
            .filter(|id| *id != sink)
            .flat_map(|id| (0..4).map(move |n| Injection { stage: id.0, node: n, attempt: 0 }))
            .collect();
        let second = run_query_resumable(
            &plan,
            &config,
            &catalog,
            &FailureInjector::with(poison),
            &RunOptions::default(),
            &store,
        );
        assert_eq!(second.stages_skipped as usize, n_stages - 1, "all but the sink skipped");
        assert_eq!(second.results, first.results);
    }

    #[test]
    fn resume_recomputes_missing_stages_only() {
        use crate::coordinator::run_query_resumable;
        use crate::store::IntermediateStore;
        use ftpde_store::StoreBackend;
        let plan = q3_engine_plan();
        let dag = plan.to_plan_dag();
        let config = MatConfig::all(&dag);
        let catalog = load_catalog(&db(), 3);
        let full_store = IntermediateStore::new();
        let expected = run_query_resumable(
            &plan,
            &config,
            &catalog,
            &FailureInjector::none(),
            &RunOptions::default(),
            &full_store,
        );

        // Simulate a partially-survived store: only the first join's
        // output made it.
        let partial = IntermediateStore::new();
        let j1 = plan.op_ids().find(|id| plan.op(*id).name == "⋈ C,O").unwrap();
        for n in 0..3 {
            partial.put(j1.0, n, full_store.get(j1.0, n).unwrap().as_ref().clone());
        }
        let resumed = run_query_resumable(
            &plan,
            &config,
            &catalog,
            &FailureInjector::none(),
            &RunOptions::default(),
            &partial,
        );
        assert_eq!(resumed.stages_skipped, 1);
        assert_eq!(resumed.results, expected.results);
    }

    #[test]
    fn traced_run_mirrors_stage_structure_and_failures() {
        use crate::coordinator::run_query_traced;
        use ftpde_obs::{MemoryRecorder, Phase};

        let plan = q3_engine_plan();
        let expected = reference(&plan);
        let dag = plan.to_plan_dag();
        // Materialize the first join so the run has two stages, then kill
        // node 1's first attempt on the sink stage.
        let config = MatConfig::from_free_bits(&dag, 0b01);
        let pc = ftpde_core::collapse::CollapsedPlan::collapse(&dag, &config, 1.0);
        let sink = plan.sinks()[0];
        let injector = FailureInjector::with([Injection { stage: sink.0, node: 1, attempt: 0 }]);
        let catalog = load_catalog(&db(), 4);
        let rec = MemoryRecorder::new();
        let got = run_query_traced(
            &plan,
            &config,
            &catalog,
            &injector,
            &RunOptions::default(),
            None,
            &rec,
        );
        assert_eq!(got.results, expected);
        assert_eq!(got.node_retries, 1);

        let events = rec.events();
        // One coordinator stage span per collapsed stage.
        let stage_spans: Vec<_> = events
            .iter()
            .filter(|e| e.phase == Phase::Span && e.name.starts_with("stage "))
            .collect();
        assert_eq!(stage_spans.len(), pc.len());
        // 4 nodes × 2 stages successful attempts + 1 failed retry's
        // successful re-attempt are all worker spans; the failure itself is
        // an instant followed by a redeploy.
        let failures: Vec<_> = events.iter().filter(|e| e.name == "node_failure").collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].tid, 2, "node 1 records on track 2");
        assert_eq!(events.iter().filter(|e| e.name == "redeploy").count(), 1);
        assert!(events.iter().any(|e| e.name == "materialize"));
        assert_eq!(events.last().unwrap().name, "query_completed");

        // Stage timings cover both stages, attribute the retry to the sink
        // stage, and their spans are plausible wall-clock durations.
        assert_eq!(got.stage_timings.len(), pc.len());
        assert_eq!(got.stage_timings.iter().map(|t| t.retries).sum::<u64>(), 1);
        let sink_timing =
            got.stage_timings.iter().find(|t| t.stage == sink.0).expect("sink stage timed");
        assert_eq!(sink_timing.retries, 1);
        assert!(!sink_timing.skipped);

        // The same run through the no-op recorder produces the same report
        // (minus the wall-clock timings, which are non-deterministic).
        let untraced = run_query(&plan, &config, &catalog, &injector, &RunOptions::default());
        assert_eq!(untraced.results, got.results);
        assert_eq!(untraced.node_retries, got.node_retries);
    }

    #[test]
    fn q1_aggregate_sums_match_brute_force() {
        let database = db();
        let mut sum = [0i64; 3];
        let mut count = [0i64; 3];
        for l in &database.lineitem {
            if l.shipdate <= 2400 {
                sum[l.returnflag as usize] += l.extendedprice;
                count[l.returnflag as usize] += 1;
            }
        }
        let plan = q1_engine_plan();
        let results = reference(&plan);
        for r in &results[0].1 {
            let flag = r[0].as_int() as usize;
            assert_eq!(r[1], Value::Int(sum[flag]));
            assert_eq!(r[2], Value::Int(count[flag]));
        }
    }
}
