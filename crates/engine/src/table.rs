//! Partitioned in-memory storage.
//!
//! The engine's physical layout mirrors the paper's (§5.1) at micro scale:
//! the two big tables (LINEITEM, ORDERS) are hash-co-partitioned on
//! `orderkey` across the worker nodes; every other table is replicated to
//! all nodes — the engine-level equivalent of the paper's RREF partial
//! replication, which exists precisely to make all evaluation-query joins
//! node-local.

use std::collections::HashMap;

use ftpde_store::value::{Row, Value};

/// How a table's rows are distributed across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Each row lives on exactly one node (hash of a key column).
    Partitioned,
    /// Every node holds a full copy.
    Replicated,
}

/// A table distributed over the cluster's nodes.
#[derive(Debug, Clone)]
pub struct PartitionedTable {
    name: String,
    distribution: Distribution,
    partitions: Vec<Vec<Row>>,
}

/// Spreads sequential integer keys uniformly over `nodes` buckets.
#[inline]
pub fn hash_key(key: i64, nodes: usize) -> usize {
    ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % nodes
}

impl PartitionedTable {
    /// Hash-partitions `rows` on column `key_col` over `nodes` nodes.
    pub fn hash_partitioned(
        name: impl Into<String>,
        rows: Vec<Row>,
        key_col: usize,
        nodes: usize,
    ) -> Self {
        assert!(nodes > 0);
        let mut partitions = vec![Vec::new(); nodes];
        for r in rows {
            let key = match r[key_col] {
                Value::Int(k) => k,
                Value::Float(_) => panic!("partition keys must be integers"),
            };
            partitions[hash_key(key, nodes)].push(r);
        }
        PartitionedTable { name: name.into(), distribution: Distribution::Partitioned, partitions }
    }

    /// Replicates `rows` to every node.
    pub fn replicated(name: impl Into<String>, rows: Vec<Row>, nodes: usize) -> Self {
        assert!(nodes > 0);
        PartitionedTable {
            name: name.into(),
            distribution: Distribution::Replicated,
            partitions: vec![rows; nodes],
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's distribution.
    pub fn distribution(&self) -> Distribution {
        self.distribution
    }

    /// The rows visible on `node`.
    pub fn partition(&self, node: usize) -> &[Row] {
        &self.partitions[node]
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.partitions.len()
    }

    /// Total distinct rows (one copy for replicated tables).
    pub fn logical_rows(&self) -> usize {
        match self.distribution {
            Distribution::Partitioned => self.partitions.iter().map(Vec::len).sum(),
            Distribution::Replicated => self.partitions.first().map_or(0, Vec::len),
        }
    }
}

/// The node-local view of a sharded database: a set of named partitioned
/// tables, all over the same node count.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, PartitionedTable>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table.
    ///
    /// # Panics
    /// Panics if a table of that name exists or node counts disagree.
    pub fn register(&mut self, table: PartitionedTable) {
        if let Some(existing) = self.tables.values().next() {
            assert_eq!(existing.nodes(), table.nodes(), "node counts must agree");
        }
        let prev = self.tables.insert(table.name().to_string(), table);
        assert!(prev.is_none(), "duplicate table registration");
    }

    /// Looks a table up by name.
    ///
    /// # Panics
    /// Panics on unknown tables — plans are validated against the catalog
    /// at construction time.
    pub fn table(&self, name: &str) -> &PartitionedTable {
        self.tables.get(name).unwrap_or_else(|| panic!("unknown table {name:?}"))
    }

    /// `true` iff a table of this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Number of nodes all tables are distributed over (0 when empty).
    pub fn nodes(&self) -> usize {
        self.tables.values().next().map_or(0, PartitionedTable::nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_store::value::int_row;

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|k| int_row(&[k, k * 10])).collect()
    }

    #[test]
    fn hash_partitioning_covers_all_rows_once() {
        let t = PartitionedTable::hash_partitioned("t", rows(1000), 0, 4);
        assert_eq!(t.logical_rows(), 1000);
        let total: usize = (0..4).map(|n| t.partition(n).len()).sum();
        assert_eq!(total, 1000);
        // Reasonably balanced.
        for n in 0..4 {
            let len = t.partition(n).len();
            assert!((150..350).contains(&len), "partition {n} has {len}");
        }
    }

    #[test]
    fn same_key_same_partition() {
        let t = PartitionedTable::hash_partitioned("t", rows(100), 0, 4);
        // A row with key k must be in partition hash_key(k).
        for n in 0..4 {
            for r in t.partition(n) {
                assert_eq!(hash_key(r[0].as_int(), 4), n);
            }
        }
    }

    #[test]
    fn replication_copies_everything() {
        let t = PartitionedTable::replicated("t", rows(10), 3);
        assert_eq!(t.logical_rows(), 10);
        for n in 0..3 {
            assert_eq!(t.partition(n).len(), 10);
        }
        assert_eq!(t.distribution(), Distribution::Replicated);
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        c.register(PartitionedTable::hash_partitioned("a", rows(10), 0, 2));
        c.register(PartitionedTable::replicated("b", rows(5), 2));
        assert!(c.contains("a"));
        assert!(!c.contains("z"));
        assert_eq!(c.table("b").logical_rows(), 5);
        assert_eq!(c.nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_registration_panics() {
        let mut c = Catalog::new();
        c.register(PartitionedTable::replicated("a", rows(1), 2));
        c.register(PartitionedTable::replicated("a", rows(1), 2));
    }

    #[test]
    #[should_panic(expected = "node counts")]
    fn node_count_mismatch_panics() {
        let mut c = Catalog::new();
        c.register(PartitionedTable::replicated("a", rows(1), 2));
        c.register(PartitionedTable::replicated("b", rows(1), 3));
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn unknown_table_panics() {
        let c = Catalog::new();
        let _ = c.table("nope");
    }
}
