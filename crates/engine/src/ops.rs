//! Physical operator execution on one node's data.
//!
//! Every operator is a pure function from input row vectors to an output
//! row vector. Executors poll an interrupt flag at row-batch boundaries so
//! an injected node failure aborts the operator mid-flight — partial work
//! is discarded exactly as when a real process dies.

use std::collections::HashMap;

use crate::plan::{Agg, AggFunc, OpKind};
use crate::table::Catalog;
use ftpde_store::value::{Row, Value};

/// Execution failure: the node was killed while running the operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted;

/// How many rows are processed between interrupt checks.
const BATCH: usize = 256;

/// Per-node execution context.
pub struct ExecCtx<'a> {
    /// The sharded database.
    pub catalog: &'a Catalog,
    /// This worker's node index.
    pub node: usize,
    /// Returns `true` when the node has been killed.
    pub interrupted: &'a dyn Fn() -> bool,
}

impl ExecCtx<'_> {
    #[allow(clippy::manual_is_multiple_of)] // usize::is_multiple_of needs Rust 1.87; MSRV is 1.82
    fn check(&self, processed: usize) -> Result<(), Interrupted> {
        if processed % BATCH == 0 && (self.interrupted)() {
            Err(Interrupted)
        } else {
            Ok(())
        }
    }
}

/// Executes one operator on one node. `inputs` are the operator's input
/// row sets in plan order (empty for scans).
pub fn execute(
    kind: &OpKind,
    inputs: &[&[Row]],
    ctx: &ExecCtx<'_>,
) -> Result<Vec<Row>, Interrupted> {
    match kind {
        OpKind::Scan { table, filter, project } => {
            let rows = ctx.catalog.table(table).partition(ctx.node);
            let mut out = Vec::new();
            for (i, r) in rows.iter().enumerate() {
                ctx.check(i)?;
                if filter.as_ref().is_some_and(|f| !f.eval_bool(r)) {
                    continue;
                }
                out.push(match project {
                    Some(cols) => cols.iter().map(|&c| r[c]).collect(),
                    None => r.clone(),
                });
            }
            Ok(out)
        }
        OpKind::Filter { predicate } => {
            let mut out = Vec::new();
            for (i, r) in inputs[0].iter().enumerate() {
                ctx.check(i)?;
                if predicate.eval_bool(r) {
                    out.push(r.clone());
                }
            }
            Ok(out)
        }
        OpKind::Project { exprs } => {
            let mut out = Vec::with_capacity(inputs[0].len());
            for (i, r) in inputs[0].iter().enumerate() {
                ctx.check(i)?;
                out.push(exprs.iter().map(|e| e.eval(r)).collect());
            }
            Ok(out)
        }
        OpKind::HashJoin { build_key, probe_key, residual } => {
            let (build, probe) = (inputs[0], inputs[1]);
            let mut table: HashMap<i64, Vec<&Row>> = HashMap::new();
            for (i, r) in build.iter().enumerate() {
                ctx.check(i)?;
                table.entry(r[*build_key].as_int()).or_default().push(r);
            }
            let mut out = Vec::new();
            for (i, p) in probe.iter().enumerate() {
                ctx.check(i)?;
                if let Some(matches) = table.get(&p[*probe_key].as_int()) {
                    for b in matches {
                        let joined: Row = b.iter().chain(p.iter()).copied().collect();
                        if residual.as_ref().is_none_or(|f| f.eval_bool(&joined)) {
                            out.push(joined);
                        }
                    }
                }
            }
            Ok(out)
        }
        OpKind::HashAgg { group_cols, aggs } => aggregate(inputs[0], group_cols, aggs, ctx),
        OpKind::TopK { sort_col, ascending, k } => top_k(inputs[0], *sort_col, *ascending, *k, ctx),
    }
}

/// Top-k with a total, deterministic order: primary key is the sort
/// column, ties are broken by comparing the full row — so merging
/// per-node partials reproduces the single-node result exactly.
pub fn top_k(
    rows: &[Row],
    sort_col: usize,
    ascending: bool,
    k: usize,
    ctx: &ExecCtx<'_>,
) -> Result<Vec<Row>, Interrupted> {
    ctx.check(0)?; // single interruption point: sorting is one burst
    let mut out: Vec<Row> = rows.to_vec();
    let cmp = |a: &Row, b: &Row| {
        let primary = a[sort_col].total_cmp(&b[sort_col]);
        let primary = if ascending { primary } else { primary.reverse() };
        primary.then_with(|| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| !o.is_eq())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    };
    out.sort_by(cmp);
    out.truncate(k);
    Ok(out)
}

/// Hash aggregation with deterministic (group-key-sorted) output order.
fn aggregate(
    rows: &[Row],
    group_cols: &[usize],
    aggs: &[Agg],
    ctx: &ExecCtx<'_>,
) -> Result<Vec<Row>, Interrupted> {
    let mut groups: HashMap<Vec<i64>, Vec<Value>> = HashMap::new();
    for (i, r) in rows.iter().enumerate() {
        ctx.check(i)?;
        let key: Vec<i64> = group_cols.iter().map(|&c| r[c].as_int()).collect();
        let accs = groups.entry(key).or_insert_with(|| init_accs(aggs));
        for (acc, agg) in accs.iter_mut().zip(aggs) {
            update_acc(acc, agg, r);
        }
    }
    // Empty input with no groups: global aggregates still yield one row.
    if groups.is_empty() && group_cols.is_empty() {
        groups.insert(Vec::new(), init_accs(aggs));
    }
    let mut keyed: Vec<(Vec<i64>, Vec<Value>)> = groups.into_iter().collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(keyed
        .into_iter()
        .map(|(key, accs)| key.into_iter().map(Value::Int).chain(accs).collect::<Row>())
        .collect())
}

fn init_accs(aggs: &[Agg]) -> Vec<Value> {
    aggs.iter()
        .map(|a| match a.func {
            AggFunc::Sum | AggFunc::Count => Value::Int(0),
            AggFunc::Min => Value::Int(i64::MAX),
            AggFunc::Max => Value::Int(i64::MIN),
        })
        .collect()
}

fn update_acc(acc: &mut Value, agg: &Agg, row: &Row) {
    match agg.func {
        AggFunc::Count => *acc = Value::Int(acc.as_int() + 1),
        AggFunc::Sum => {
            let v = agg.expr.eval(row);
            *acc = match (*acc, v) {
                (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
                (a, b) => Value::Float(a.as_float() + b.as_float()),
            };
        }
        AggFunc::Min => {
            let v = agg.expr.eval(row);
            if v.total_cmp(acc).is_lt() {
                *acc = v;
            }
        }
        AggFunc::Max => {
            let v = agg.expr.eval(row);
            if v.total_cmp(acc).is_gt() {
                *acc = v;
            }
        }
    }
}

/// Merges per-node partial aggregation outputs into the global result:
/// re-aggregates the partial rows on the same group columns with each
/// aggregate's merge function applied to its accumulator column.
pub fn merge_partials(
    partials: &[Vec<Row>],
    group_cols: &[usize],
    aggs: &[Agg],
    ctx: &ExecCtx<'_>,
) -> Result<Vec<Row>, Interrupted> {
    use crate::expr::Expr;
    let all: Vec<Row> = partials.iter().flatten().cloned().collect();
    let merge_group: Vec<usize> = (0..group_cols.len()).collect();
    let merge_aggs: Vec<Agg> = aggs
        .iter()
        .enumerate()
        .map(|(i, a)| Agg { func: a.func.merge_func(), expr: Expr::col(group_cols.len() + i) })
        .collect();
    aggregate(&all, &merge_group, &merge_aggs, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::table::PartitionedTable;
    use ftpde_store::value::int_row;

    fn ctx(catalog: &Catalog) -> ExecCtx<'_> {
        ExecCtx { catalog, node: 0, interrupted: &|| false }
    }

    fn empty_catalog() -> Catalog {
        Catalog::new()
    }

    #[test]
    fn scan_filters_and_projects() {
        let mut c = Catalog::new();
        c.register(PartitionedTable::replicated(
            "t",
            (0..10).map(|k| int_row(&[k, k * 2])).collect(),
            1,
        ));
        let kind = OpKind::Scan {
            table: "t".into(),
            filter: Some(Expr::col(0).ge(Expr::lit(7))),
            project: Some(vec![1]),
        };
        let out = execute(&kind, &[], &ctx(&c)).unwrap();
        assert_eq!(out, vec![int_row(&[14]), int_row(&[16]), int_row(&[18])]);
    }

    #[test]
    fn filter_and_project() {
        let c = empty_catalog();
        let input: Vec<Row> = (0..6).map(|k| int_row(&[k])).collect();
        let f = OpKind::Filter { predicate: Expr::col(0).gt(Expr::lit(3)) };
        let out = execute(&f, &[&input], &ctx(&c)).unwrap();
        assert_eq!(out.len(), 2);
        let p = OpKind::Project { exprs: vec![Expr::col(0).mul(Expr::lit(10))] };
        let out = execute(&p, &[&out], &ctx(&c)).unwrap();
        assert_eq!(out, vec![int_row(&[40]), int_row(&[50])]);
    }

    #[test]
    fn hash_join_concatenates_and_matches() {
        let c = empty_catalog();
        let build: Vec<Row> = vec![int_row(&[1, 100]), int_row(&[2, 200])];
        let probe: Vec<Row> = vec![int_row(&[10, 1]), int_row(&[20, 2]), int_row(&[30, 3])];
        let j = OpKind::HashJoin { build_key: 0, probe_key: 1, residual: None };
        let mut out = execute(&j, &[&build, &probe], &ctx(&c)).unwrap();
        out.sort_by_key(|r| r[0].as_int());
        assert_eq!(out, vec![int_row(&[1, 100, 10, 1]), int_row(&[2, 200, 20, 2])]);
    }

    #[test]
    fn hash_join_residual_filters_combined_row() {
        let c = empty_catalog();
        let build: Vec<Row> = vec![int_row(&[1, 100])];
        let probe: Vec<Row> = vec![int_row(&[50, 1]), int_row(&[150, 1])];
        // combined row: [b0, b1, p0, p1]; keep p0 > b1.
        let j = OpKind::HashJoin {
            build_key: 0,
            probe_key: 1,
            residual: Some(Expr::col(2).gt(Expr::col(1))),
        };
        let out = execute(&j, &[&build, &probe], &ctx(&c)).unwrap();
        assert_eq!(out, vec![int_row(&[1, 100, 150, 1])]);
    }

    #[test]
    fn duplicate_build_keys_produce_all_matches() {
        let c = empty_catalog();
        let build: Vec<Row> = vec![int_row(&[1, 7]), int_row(&[1, 8])];
        let probe: Vec<Row> = vec![int_row(&[1])];
        let j = OpKind::HashJoin { build_key: 0, probe_key: 0, residual: None };
        let out = execute(&j, &[&build, &probe], &ctx(&c)).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn aggregation_groups_and_sorts() {
        let c = empty_catalog();
        let input: Vec<Row> =
            vec![int_row(&[2, 10]), int_row(&[1, 5]), int_row(&[2, 30]), int_row(&[1, 7])];
        let a = OpKind::HashAgg {
            group_cols: vec![0],
            aggs: vec![
                Agg { func: AggFunc::Sum, expr: Expr::col(1) },
                Agg { func: AggFunc::Count, expr: Expr::lit(1) },
                Agg { func: AggFunc::Min, expr: Expr::col(1) },
                Agg { func: AggFunc::Max, expr: Expr::col(1) },
            ],
        };
        let out = execute(&a, &[&input], &ctx(&c)).unwrap();
        assert_eq!(out, vec![int_row(&[1, 12, 2, 5, 7]), int_row(&[2, 40, 2, 10, 30])]);
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let c = empty_catalog();
        let input: Vec<Row> = Vec::new();
        let a = OpKind::HashAgg {
            group_cols: vec![],
            aggs: vec![Agg { func: AggFunc::Count, expr: Expr::lit(1) }],
        };
        let out = execute(&a, &[&input], &ctx(&c)).unwrap();
        assert_eq!(out, vec![int_row(&[0])]);
    }

    #[test]
    fn merge_partials_reaggregates() {
        let c = empty_catalog();
        let cx = ctx(&c);
        let group_cols = vec![0];
        let aggs = vec![
            Agg { func: AggFunc::Sum, expr: Expr::col(1) },
            Agg { func: AggFunc::Count, expr: Expr::lit(1) },
            Agg { func: AggFunc::Min, expr: Expr::col(1) },
        ];
        // Partials from two nodes: [group, sum, count, min].
        let node0 = vec![int_row(&[1, 10, 2, 3])];
        let node1 = vec![int_row(&[1, 20, 3, 1]), int_row(&[2, 5, 1, 5])];
        let merged = merge_partials(&[node0, node1], &group_cols, &aggs, &cx).unwrap();
        assert_eq!(merged, vec![int_row(&[1, 30, 5, 1]), int_row(&[2, 5, 1, 5])]);
    }

    #[test]
    fn interruption_aborts_execution() {
        let mut c = Catalog::new();
        c.register(PartitionedTable::replicated(
            "t",
            (0..10_000).map(|k| int_row(&[k])).collect(),
            1,
        ));
        let cx = ExecCtx { catalog: &c, node: 0, interrupted: &|| true };
        let kind = OpKind::Scan { table: "t".into(), filter: None, project: None };
        assert_eq!(execute(&kind, &[], &cx), Err(Interrupted));
    }
}
