//! The query coordinator: splits a plan into sub-plans at its
//! materialization points, schedules them partition-parallel on worker
//! threads (one per node), monitors for injected node failures, and
//! recovers — fine-grained (redeploy the failed node's sub-plan, as the
//! paper's XDB coordinator does) or coarse-grained (restart the whole
//! query, the classic parallel-database behaviour).
//!
//! The stage structure is exactly the paper's collapsed plan: the engine
//! reuses [`ftpde_core::collapse::CollapsedPlan`] on a structural mirror
//! of the engine plan, so the recovery granularity the cost model reasons
//! about is the granularity the engine actually executes.
//!
//! Since the pluggable store ([`crate::store`]) the coordinator runs over
//! any [`StoreBackend`] and treats storage-level corruption as a third
//! failure class next to node failures: a stage whose materialized input
//! turns out corrupt (checksum mismatch, torn write after a crash) is not
//! an error — the coordinator emits a `segment_corrupt` event, walks back
//! to the producing stage and re-executes forward from there.

use std::collections::HashMap;

use ftpde_core::collapse::CollapsedPlan;
use ftpde_core::config::MatConfig;
use ftpde_core::cost::EstimateBreakdown;
use ftpde_obs::{Event, NoopRecorder, Recorder};
use ftpde_store::value::Row;
use ftpde_store::StoreBackend;

use crate::failure::FailureInjector;
use crate::ops::{execute, merge_partials, ExecCtx, Interrupted};
use crate::plan::{EOpId, EnginePlan, OpKind};
use crate::store::default_store;
use crate::sync::clock;
use crate::sync::plain::{thread, Arc};
use crate::sync::{AtomicU64, InterruptFlag, Ordering};
use crate::table::{Catalog, Distribution};

/// How the coordinator recovers from node failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineRecovery {
    /// Redeploy only the failed node's sub-plan (all-mat, lineage and
    /// cost-based schemes).
    FineGrained,
    /// Restart the whole query, discarding all intermediates
    /// (no-mat (restart)).
    CoarseRestart,
}

/// Coordinator options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Recovery mode.
    pub recovery: EngineRecovery,
    /// Whole-query restarts after which a coarse run aborts (paper: 100).
    pub max_restarts: u32,
    /// Virtual milliseconds the global [`clock`] advances at each
    /// injected failure — the paper's repair time `tr`, in simulated
    /// time. Zero (the default) means failures recover instantaneously,
    /// the engine's historical behavior; the simulation harness sets it
    /// so recovery stretches observed spans without a real sleep.
    pub repair_ms: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { recovery: EngineRecovery::FineGrained, max_restarts: 100, repair_ms: 0 }
    }
}

/// Tees every event the run records into the process-global flight
/// recorder ([`ftpde_obs::flight::global`]) on top of the caller's
/// recorder — the engine's feed into the live telemetry plane. The ring
/// is always on, so `enabled()` is unconditionally `true`; the caller's
/// sink still gates its own copy, and with a [`NoopRecorder`] attached
/// the event is moved (not cloned) into the ring. Under `--cfg loom`
/// the global ring's primitives are loom types unusable outside a
/// model, so the tee degrades to a plain pass-through.
struct FlightTee<'a> {
    inner: &'a dyn Recorder,
}

impl Recorder for FlightTee<'_> {
    fn enabled(&self) -> bool {
        cfg!(not(loom)) || self.inner.enabled()
    }

    fn record(&self, event: Event) {
        #[cfg(not(loom))]
        {
            let flight = ftpde_obs::flight::global();
            if self.inner.enabled() {
                flight.record(event.clone());
                self.inner.record(event);
            } else {
                flight.record(event);
            }
        }
        #[cfg(loom)]
        self.inner.record(event);
    }
}

/// Why a worker attempt did not produce rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerError {
    /// The injector (or the stage's cancel flag) killed the node.
    Interrupted,
    /// A cross-stage input read as absent mid-run: the segment was
    /// demoted (corruption found by a concurrent reader) after the
    /// coordinator's pre-check passed. Carries the producing operator id.
    InputLost(u32),
}

impl From<Interrupted> for WorkerError {
    fn from(Interrupted: Interrupted) -> Self {
        WorkerError::Interrupted
    }
}

/// Outcome of one node's participation in a stage barrier.
#[derive(Debug, Clone, PartialEq)]
enum NodeOutcome {
    /// The node finished its sub-plan.
    Done(Vec<Row>),
    /// An injected failure killed the node (coarse recovery: the stage is
    /// doomed and the query restarts).
    Failed,
    /// A sibling's failure raised the stage's cancel flag; this node
    /// aborted early instead of finishing work the restart will discard.
    Cancelled,
    /// A cross-stage input vanished mid-run; the coordinator must re-run
    /// its input check (which rewinds to the producer).
    InputLost(u32),
}

/// Wall-clock accounting for one stage execution (or resume-skip).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// The stage's root operator id.
    pub stage: u32,
    /// Wall-clock duration of the stage barrier (all nodes, including
    /// retries), microseconds. Zero for skipped stages.
    pub wall_us: u64,
    /// Fine-grained re-executions within this stage execution.
    pub retries: u64,
    /// `true` when the stage was resumed from the store without running.
    pub skipped: bool,
}

/// Outcome of a query run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Result rows per sink operator, in sink id order.
    pub results: Vec<(EOpId, Vec<Row>)>,
    /// Fine-grained per-node sub-plan re-executions.
    pub node_retries: u64,
    /// Coarse whole-query restarts.
    pub query_restarts: u32,
    /// `true` iff the coarse restart limit was hit.
    pub aborted: bool,
    /// Logical rows written to the fault-tolerant store by this run
    /// (counting each replica target, matching the cost model's view of
    /// materialization volume).
    pub rows_materialized: u64,
    /// Physical bytes this run committed to the store's backing medium.
    pub bytes_materialized: u64,
    /// Corrupt segments encountered (and recovered from) during this run.
    pub segments_corrupt: u64,
    /// Stages skipped because their output was already materialized in the
    /// supplied store (only nonzero for [`run_query_resumable`]).
    pub stages_skipped: u64,
    /// Per-stage wall-clock accounting in execution order. One entry per
    /// stage execution: a coarse restart appends the re-executed stages
    /// again, so the list is a timeline, not a per-stage map.
    pub stage_timings: Vec<StageTiming>,
}

/// Runs `plan` under materialization configuration `config` on `catalog`'s
/// sharded database, injecting failures from `injector`. Uses the backend
/// selected by [`crate::store::BACKEND_ENV`] (in-memory by default).
///
/// # Panics
/// Panics if `config` does not match the plan shape or a fine-grained node
/// exceeds 10 000 attempts (an injector bug — the engine's injections are
/// finite by construction).
pub fn run_query(
    plan: &EnginePlan,
    config: &MatConfig,
    catalog: &Catalog,
    injector: &FailureInjector,
    opts: &RunOptions,
) -> RunReport {
    run_query_resumable(plan, config, catalog, injector, opts, &*default_store())
}

/// Like [`run_query`], additionally mirroring the execution into an
/// observability [`Recorder`] as `"engine"`-category events with
/// wall-clock microsecond timestamps measured from the call's start:
/// a coordinator-track span per stage (tid 0), a worker-track span per
/// completed node attempt (tid = node + 1), instants for injected node
/// failures, redeploys, materialization writes, corrupt segments, coarse
/// restarts and query termination (including a final `store_stats` instant
/// carrying the backend's measured throughput — the observed `tm(o)`).
/// With a [`NoopRecorder`] every site costs one branch.
///
/// When `pred` carries the cost model's estimate of this plan (see
/// [`ftpde_core::cost::FtEstimate::breakdown`]), stage spans are tagged
/// with their predicted costs (matched by root operator id) and a
/// `plan_estimate` instant is emitted, making the trace self-contained
/// for offline calibration ([`ftpde_obs::CalibrationReport`],
/// `ftpde obs --trace`). Note the engine's observed side is wall-clock
/// seconds while predictions are in cost units — calibration against
/// engine runs measures the unit mismatch too, which is the point.
#[allow(clippy::too_many_arguments)]
pub fn run_query_traced(
    plan: &EnginePlan,
    config: &MatConfig,
    catalog: &Catalog,
    injector: &FailureInjector,
    opts: &RunOptions,
    pred: Option<&EstimateBreakdown>,
    rec: &dyn Recorder,
) -> RunReport {
    run_query_resumable_traced(plan, config, catalog, injector, opts, &*default_store(), pred, rec)
}

/// Like [`run_query`], but resuming from (and writing to) an external
/// fault-tolerant `store` — the paper's §2.2 recovery contract across
/// *coordinator* restarts: a re-submitted query skips every sub-plan whose
/// output already survived in the store and re-executes only the rest.
/// With a [`ftpde_store::DiskBackend`] reopened from its manifest this
/// holds across a genuine process crash, not just a dropped coordinator.
///
/// Stages are skipped only when **all** their partitions are present
/// (non-sink stages with materializing roots); coarse restarts still clear
/// the store, as the `no-mat (restart)` scheme keeps no state by
/// definition. A skipped stage whose surviving segment later fails its
/// checksum on read is demoted and re-executed — corruption can delay
/// recovery but never wrong the result.
pub fn run_query_resumable(
    plan: &EnginePlan,
    config: &MatConfig,
    catalog: &Catalog,
    injector: &FailureInjector,
    opts: &RunOptions,
    store: &dyn StoreBackend,
) -> RunReport {
    run_query_resumable_traced(plan, config, catalog, injector, opts, store, None, &NoopRecorder)
}

/// [`run_query_resumable`] with the event mirroring and prediction
/// tagging of [`run_query_traced`].
#[allow(clippy::too_many_arguments)]
pub fn run_query_resumable_traced(
    plan: &EnginePlan,
    config: &MatConfig,
    catalog: &Catalog,
    injector: &FailureInjector,
    opts: &RunOptions,
    store: &dyn StoreBackend,
    pred: Option<&EstimateBreakdown>,
    rec: &dyn Recorder,
) -> RunReport {
    // Every event this run records — including those below with a no-op
    // caller sink — is mirrored into the always-on flight recorder.
    let tee = FlightTee { inner: rec };
    let rec: &dyn Recorder = &tee;
    let dag = plan.to_plan_dag();
    config.validate(&dag).expect("config matches plan");
    let collapsed = CollapsedPlan::collapse(&dag, config, 1.0);
    let dists = plan.distributions(catalog);
    let nodes = catalog.nodes();
    assert!(nodes > 0, "catalog has no tables");
    let node_retries = AtomicU64::new(0);
    let mut query_restarts = 0u32;
    let mut stages_skipped = 0u64;
    let mut segments_corrupt = 0u64;
    let mut input_recoveries = 0u64;
    let mut first_attempt = true;
    let mut stage_timings: Vec<StageTiming> = Vec::new();
    let stats_at_start = store.stats();
    let t0 = clock::now();
    let now_us = move || clock::elapsed(t0).as_micros() as u64;
    // Always-on metrics: the run is visible in the process-global
    // registry even when `rec` is a no-op. Per-query totals fold in at
    // the single `report` choke point below.
    ftpde_obs::global().counter_add("engine.queries_total", 1);

    if let Some(p) = pred {
        rec.record_with(|| {
            Event::instant("plan_estimate", "engine", now_us())
                .arg("pred_cost_s", p.dominant_cost)
                .arg("pred_runtime_s", p.dominant_runtime)
        });
    }

    // Stages in execution (topological) order. The loop below walks this
    // list by index rather than iterating directly so input corruption can
    // *back up*: when a stage's materialized input fails its checksum, the
    // cursor rewinds to the producing stage and re-executes forward.
    let stage_list: Vec<_> = collapsed.op_ids().collect();
    // Live per-query progress for `/queries` and `ftpde top`, labelled
    // with the query's sink operator. Stage/retry/restart updates below
    // are single atomic RMWs on the run's handle; the `report` choke
    // point finishes the entry.
    let progress = ftpde_obs::progress::global().start(
        stage_list.last().map_or_else(
            || "query".to_owned(),
            |&cid| plan.op(EOpId(collapsed.op(cid).root.0)).name.clone(),
        ),
        stage_list.len() as u64,
        pred.map(|p| p.dominant_runtime),
    );
    // Surface whatever a disk backend demoted while opening (crash debris).
    let drained = emit_corruptions(store, rec, &now_us);
    segments_corrupt += drained;
    progress.add_corrupt(drained);

    let report = |results: Vec<(EOpId, Vec<Row>)>,
                  aborted: bool,
                  query_restarts: u32,
                  stages_skipped: u64,
                  segments_corrupt: u64,
                  stage_timings: Vec<StageTiming>,
                  node_retries: u64| {
        let stats = store.stats();
        let g = ftpde_obs::global();
        g.counter_add("engine.node_retries_total", node_retries);
        g.counter_add("engine.query_restarts_total", u64::from(query_restarts));
        g.counter_add("engine.stages_skipped_total", stages_skipped);
        g.counter_add("engine.segments_corrupt_total", segments_corrupt);
        if aborted {
            g.counter_add("engine.queries_aborted_total", 1);
        }
        g.observe("engine.query_seconds", clock::elapsed(t0).as_secs_f64());
        let executed = stage_timings.iter().filter(|t| !t.skipped);
        let mut stages_total = 0u64;
        for t in executed {
            stages_total += 1;
            g.observe("engine.stage_seconds", t.wall_us as f64 / 1e6);
        }
        g.counter_add("engine.stages_total", stages_total);
        progress.set_materialized(
            stats.physical_bytes_written - stats_at_start.physical_bytes_written,
            stats.logical_rows_written - stats_at_start.logical_rows_written,
        );
        progress.complete(aborted);
        RunReport {
            results,
            node_retries,
            query_restarts,
            aborted,
            rows_materialized: stats.logical_rows_written - stats_at_start.logical_rows_written,
            bytes_materialized: stats.physical_bytes_written
                - stats_at_start.physical_bytes_written,
            segments_corrupt,
            stages_skipped,
            stage_timings,
        }
    };

    'query: loop {
        // A resumed first attempt keeps the store's surviving state; any
        // coarse restart discards everything (no-mat semantics).
        if !first_attempt {
            store.clear();
        }
        first_attempt = false;
        let mut results: Vec<(EOpId, Vec<Row>)> = Vec::new();
        let mut idx = 0usize;

        while idx < stage_list.len() {
            let cid = stage_list[idx];
            let c = collapsed.op(cid);
            let root = EOpId(c.root.0);
            let members: Vec<EOpId> = c.members.iter().map(|m| EOpId(m.0)).collect();

            // Resume: a non-sink stage whose output fully survived in the
            // store needs no re-execution. (`contains` is a metadata
            // check; if the segment later fails its checksum on read, the
            // consumer's input check below rewinds to this stage, by then
            // demoted to absent.)
            let is_sink_stage = plan.consumers(root).is_empty();
            if !is_sink_stage && (0..nodes).all(|n| store.contains(root.0, n)) {
                stages_skipped += 1;
                stage_timings.push(StageTiming {
                    stage: root.0,
                    wall_us: 0,
                    retries: 0,
                    skipped: true,
                });
                rec.record_with(|| {
                    Event::instant("stage_skipped", "engine", now_us()).arg("stage", root.0)
                });
                progress.stage_done();
                idx += 1;
                continue;
            }

            // Storage-level recovery: verify every cross-stage input is
            // actually readable before deploying workers. A corrupt
            // segment is demoted by the failed read; rewind to its
            // producer and re-execute forward from there.
            if let Some(producer) = first_unavailable_input(plan, &members, store, nodes) {
                let drained = emit_corruptions(store, rec, &now_us);
                segments_corrupt += drained;
                progress.add_corrupt(drained);
                let back = stage_list
                    .iter()
                    .position(|&pc| collapsed.op(pc).root.0 == producer)
                    .expect("producer of a collapsed input is an earlier stage root");
                debug_assert!(back <= idx, "inputs come from earlier stages");
                rec.record_with(|| {
                    Event::instant("input_rewind", "engine", now_us())
                        .arg("stage", root.0)
                        .arg("producer", producer)
                });
                input_recoveries += 1;
                ftpde_obs::global().counter_add("engine.input_rewinds_total", 1);
                assert!(
                    input_recoveries < 10_000,
                    "storage keeps corrupting faster than stages re-execute"
                );
                idx = back;
                continue;
            }

            let stage_start = now_us();
            let retries_before = node_retries.load(Ordering::Relaxed);
            // Raised by the first coarse-recovery failure so sibling
            // workers abort at their next batch boundary: the restart
            // discards their output anyway. Fine-grained workers recover
            // per-node and never consult it.
            let cancel = InterruptFlag::new();

            // Execute the stage on every node.
            let partials: Vec<NodeOutcome> = thread::scope(|s| {
                let handles: Vec<_> = (0..nodes)
                    .map(|node| {
                        let members = &members;
                        let node_retries = &node_retries;
                        let cancel = &cancel;
                        s.spawn(move || match opts.recovery {
                            EngineRecovery::FineGrained => {
                                let mut attempt = 0u32;
                                loop {
                                    let attempt_start = now_us();
                                    match run_stage_on_node(
                                        plan, members, root, node, attempt, catalog, store,
                                        injector, None,
                                    ) {
                                        Ok(rows) => {
                                            rec.record_with(|| {
                                                worker_span(
                                                    attempt_start,
                                                    now_us(),
                                                    root,
                                                    node,
                                                    attempt,
                                                    true,
                                                )
                                                .arg("rows", rows.len())
                                            });
                                            break NodeOutcome::Done(rows);
                                        }
                                        Err(WorkerError::InputLost(producer)) => {
                                            // Retrying cannot help: the
                                            // segment stays absent until
                                            // the coordinator rewinds to
                                            // its producer.
                                            break NodeOutcome::InputLost(producer);
                                        }
                                        Err(WorkerError::Interrupted) => {
                                            rec.record_with(|| {
                                                failure_instant(
                                                    now_us(),
                                                    attempt_start,
                                                    root,
                                                    node,
                                                    attempt,
                                                )
                                            });
                                            node_retries.fetch_add(1, Ordering::Relaxed);
                                            attempt += 1;
                                            assert!(
                                                attempt < 10_000,
                                                "injector never lets node finish"
                                            );
                                            // Repair time passes in
                                            // virtual time only.
                                            if opts.repair_ms > 0 {
                                                clock::advance(std::time::Duration::from_millis(
                                                    opts.repair_ms,
                                                ));
                                            }
                                            // Fine-grained recovery: the
                                            // failed node's sub-plan is
                                            // redeployed on the spot.
                                            rec.record_with(|| {
                                                Event::instant("redeploy", "engine", now_us())
                                                    .tid(node as u32 + 1)
                                                    .arg("stage", root.0)
                                                    .arg("node", node)
                                                    .arg("attempt", attempt)
                                            });
                                        }
                                    }
                                }
                            }
                            EngineRecovery::CoarseRestart => {
                                let attempt_start = now_us();
                                match run_stage_on_node(
                                    plan,
                                    members,
                                    root,
                                    node,
                                    query_restarts,
                                    catalog,
                                    store,
                                    injector,
                                    Some(cancel),
                                ) {
                                    Ok(rows) => {
                                        rec.record_with(|| {
                                            worker_span(
                                                attempt_start,
                                                now_us(),
                                                root,
                                                node,
                                                query_restarts,
                                                true,
                                            )
                                            .arg("rows", rows.len())
                                        });
                                        NodeOutcome::Done(rows)
                                    }
                                    Err(WorkerError::InputLost(producer)) => {
                                        NodeOutcome::InputLost(producer)
                                    }
                                    Err(WorkerError::Interrupted) => {
                                        // Distinguish a genuine injected
                                        // kill from a cooperative abort
                                        // after a sibling's kill
                                        // (should_fail is idempotent).
                                        if injector.should_fail(root.0, node, query_restarts) {
                                            cancel.set();
                                            rec.record_with(|| {
                                                failure_instant(
                                                    now_us(),
                                                    attempt_start,
                                                    root,
                                                    node,
                                                    query_restarts,
                                                )
                                            });
                                            // Repair time before the
                                            // restart, in virtual time.
                                            if opts.repair_ms > 0 {
                                                clock::advance(std::time::Duration::from_millis(
                                                    opts.repair_ms,
                                                ));
                                            }
                                            NodeOutcome::Failed
                                        } else {
                                            rec.record_with(|| {
                                                Event::instant(
                                                    "worker_cancelled",
                                                    "engine",
                                                    now_us(),
                                                )
                                                .tid(node as u32 + 1)
                                                .arg("stage", root.0)
                                                .arg("node", node)
                                                .arg("attempt", query_restarts)
                                            });
                                            NodeOutcome::Cancelled
                                        }
                                    }
                                }
                            }
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });

            let stage_failed =
                partials.iter().any(|o| matches!(o, NodeOutcome::Failed | NodeOutcome::Cancelled));
            let lost_input = partials.iter().any(|o| matches!(o, NodeOutcome::InputLost(_)));
            stage_timings.push(StageTiming {
                stage: root.0,
                wall_us: now_us() - stage_start,
                retries: node_retries.load(Ordering::Relaxed) - retries_before,
                skipped: false,
            });
            progress.add_retries(node_retries.load(Ordering::Relaxed) - retries_before);
            rec.record_with(|| {
                let mut span = Event::span(
                    format!("stage {}", root.0),
                    "engine",
                    stage_start,
                    now_us() - stage_start,
                )
                .arg("stage", root.0)
                .arg("nodes", nodes)
                .arg("failed", stage_failed || lost_input);
                if let Some(s) = pred.and_then(|p| p.by_root(root.0)) {
                    span = span
                        .arg("pred_run_s", s.run_cost)
                        .arg("pred_mat_s", s.mat_cost)
                        .arg("pred_rec_s", s.recovery_cost)
                        .arg("pred_cost_s", s.ft_cost)
                        .arg("dominant", s.on_dominant_path);
                }
                span
            });

            if !stage_failed && lost_input {
                // A worker observed a pre-checked input vanish (a
                // concurrent read demoted the segment). Surface the
                // corruption and re-enter the same stage: the input check
                // will find the slot absent and rewind to its producer.
                let drained = emit_corruptions(store, rec, &now_us);
                segments_corrupt += drained;
                progress.add_corrupt(drained);
                continue;
            }
            if stage_failed {
                // A node died under coarse recovery: restart the query.
                query_restarts += 1;
                if query_restarts >= opts.max_restarts {
                    rec.record_with(|| {
                        Event::instant("query_aborted", "engine", now_us())
                            .arg("restarts", query_restarts)
                    });
                    return report(
                        Vec::new(),
                        true,
                        query_restarts,
                        stages_skipped,
                        segments_corrupt,
                        stage_timings,
                        node_retries.load(Ordering::Relaxed),
                    );
                }
                rec.record_with(|| {
                    Event::instant("query_restart", "engine", now_us())
                        .arg("attempt", query_restarts)
                });
                progress.restart();
                continue 'query;
            }
            let partials: Vec<Vec<Row>> = partials
                .into_iter()
                .map(|o| match o {
                    NodeOutcome::Done(rows) => rows,
                    other => unreachable!("non-Done outcome {other:?} handled above"),
                })
                .collect();

            // Root output handling: gather points (aggregations, top-k)
            // merge globally and are broadcast; other roots stay
            // partitioned.
            let root_op = plan.op(root);
            let is_sink = plan.consumers(root).is_empty();
            let merge_ctx = ExecCtx { catalog, node: 0, interrupted: &|| false };
            if root_op.kind.is_gather() {
                let global = match dists[root_op.inputs[0].index()] {
                    // Replicated input: every node's partial already is the
                    // global answer.
                    Distribution::Replicated => partials.into_iter().next().unwrap(),
                    Distribution::Partitioned => match &root_op.kind {
                        OpKind::HashAgg { group_cols, aggs } => {
                            merge_partials(&partials, group_cols, aggs, &merge_ctx)
                                .expect("coordinator-side merge cannot be interrupted")
                        }
                        OpKind::TopK { sort_col, ascending, k } => {
                            let all: Vec<Row> = partials.into_iter().flatten().collect();
                            crate::ops::top_k(&all, *sort_col, *ascending, *k, &merge_ctx)
                                .expect("coordinator-side merge cannot be interrupted")
                        }
                        _ => unreachable!("is_gather covers exactly these kinds"),
                    },
                };
                if is_sink {
                    results.push((root, global));
                } else {
                    let before = store.stats().physical_bytes_written;
                    let rows_n = global.len();
                    store.put_replicated(root.0, global, nodes);
                    rec.record_with(|| {
                        Event::instant("materialize", "engine", now_us())
                            .arg("stage", root.0)
                            .arg("rows", rows_n)
                            .arg("bytes", store.stats().physical_bytes_written - before)
                            .arg("replicated", true)
                    });
                }
            } else if config.materializes(c.root) {
                // Sinks are non-materializable (EnginePlan::finish), so a
                // materialized non-agg root keeps its per-node partitions.
                for (node, rows) in partials.into_iter().enumerate() {
                    let before = store.stats().physical_bytes_written;
                    let rows_n = rows.len();
                    store.put(root.0, node, rows);
                    rec.record_with(|| {
                        Event::instant("materialize", "engine", now_us())
                            .tid(node as u32 + 1)
                            .arg("stage", root.0)
                            .arg("node", node)
                            .arg("rows", rows_n)
                            .arg("bytes", store.stats().physical_bytes_written - before)
                    });
                }
            } else {
                // Collapse boundaries are materialization points or sinks.
                debug_assert!(is_sink);
                let rows = match dists[root.index()] {
                    Distribution::Replicated => partials.into_iter().next().unwrap(),
                    Distribution::Partitioned => partials.into_iter().flatten().collect(),
                };
                results.push((root, rows));
            }
            progress.stage_done();
            let s = store.stats();
            progress.set_materialized(
                s.physical_bytes_written - stats_at_start.physical_bytes_written,
                s.logical_rows_written - stats_at_start.logical_rows_written,
            );
            idx += 1;
        }

        segments_corrupt += emit_corruptions(store, rec, &now_us);
        rec.record_with(|| store_stats_instant(store, now_us()));
        rec.record_with(|| {
            Event::instant("query_completed", "engine", now_us())
                .arg("node_retries", node_retries.load(Ordering::Relaxed))
                .arg("query_restarts", query_restarts)
                .arg(
                    "rows_materialized",
                    store.stats().logical_rows_written - stats_at_start.logical_rows_written,
                )
                .arg("stages_skipped", stages_skipped)
        });
        return report(
            results,
            false,
            query_restarts,
            stages_skipped,
            segments_corrupt,
            stage_timings,
            node_retries.load(Ordering::Relaxed),
        );
    }
}

/// Checks that every cross-stage input the stage will read is actually
/// available (readable, checksum-clean) on every node. Returns the
/// producing operator id of the first unavailable input. Reads via
/// `get`, which both verifies integrity and warms the backend's cache
/// for the worker threads.
fn first_unavailable_input(
    plan: &EnginePlan,
    members: &[EOpId],
    store: &dyn StoreBackend,
    nodes: usize,
) -> Option<u32> {
    for &m in members {
        for p in &plan.op(m).inputs {
            if members.contains(p) {
                continue;
            }
            for node in 0..nodes {
                if store.get(p.0, node).is_none() {
                    return Some(p.0);
                }
            }
        }
    }
    None
}

/// Drains the store's corruption log, emitting one `segment_corrupt`
/// instant per entry. Returns how many were drained.
fn emit_corruptions(store: &dyn StoreBackend, rec: &dyn Recorder, now_us: &dyn Fn() -> u64) -> u64 {
    let corruptions = store.drain_corruptions();
    for c in &corruptions {
        rec.record_with(|| {
            let mut ev = Event::instant("segment_corrupt", "engine", now_us())
                .arg("op", c.op)
                .arg("reason", c.reason.as_str());
            if let Some(n) = c.node {
                ev = ev.arg("node", n);
            }
            ev
        });
    }
    corruptions.len() as u64
}

/// The final `store_stats` instant: the backend's lifetime accounting,
/// including measured write throughput — the observed `tm(o)` that
/// `ftpde_obs::calibrate` joins against the cost model's assumptions.
fn store_stats_instant(store: &dyn StoreBackend, at_us: u64) -> Event {
    let s = store.stats();
    let mut ev = Event::instant("store_stats", "engine", at_us)
        .arg("logical_rows_written", s.logical_rows_written)
        .arg("physical_rows_written", s.physical_rows_written)
        .arg("physical_bytes_written", s.physical_bytes_written)
        .arg("bytes_read", s.bytes_read)
        .arg("fsyncs", s.fsyncs)
        .arg("segments_committed", s.segments_committed)
        .arg("corrupt_segments", s.corrupt_segments);
    if let Some(v) = s.write_bytes_per_s() {
        ev = ev.arg("write_bytes_per_s", v);
    }
    if let Some(v) = s.read_bytes_per_s() {
        ev = ev.arg("read_bytes_per_s", v);
    }
    ev
}

/// A completed worker-attempt span on the node's track (tid = node + 1;
/// tid 0 is the coordinator's stage track).
fn worker_span(
    start_us: u64,
    end_us: u64,
    root: EOpId,
    node: usize,
    attempt: u32,
    ok: bool,
) -> Event {
    Event::span("attempt", "engine", start_us, end_us.saturating_sub(start_us))
        .tid(node as u32 + 1)
        .arg("stage", root.0)
        .arg("node", node)
        .arg("attempt", attempt)
        .arg("ok", ok)
}

/// An injected-failure instant on the node's track. `lost_s` is the
/// wall-clock work discarded with the attempt — the engine redeploys
/// immediately (no repair window), so it is also the failure's whole
/// observed recovery cost.
fn failure_instant(at_us: u64, start_us: u64, root: EOpId, node: usize, attempt: u32) -> Event {
    Event::instant("node_failure", "engine", at_us)
        .tid(node as u32 + 1)
        .arg("stage", root.0)
        .arg("node", node)
        .arg("attempt", attempt)
        .arg("lost_s", at_us.saturating_sub(start_us) as f64 / 1e6)
}

/// Executes the sub-plan `members` (rooted at `root`) on one node,
/// checking the failure injector (and, under coarse recovery, the
/// stage's shared [`InterruptFlag`]) at batch boundaries.
#[allow(clippy::too_many_arguments)]
fn run_stage_on_node(
    plan: &EnginePlan,
    members: &[EOpId],
    root: EOpId,
    node: usize,
    attempt: u32,
    catalog: &Catalog,
    store: &dyn StoreBackend,
    injector: &FailureInjector,
    cancel: Option<&InterruptFlag>,
) -> Result<Vec<Row>, WorkerError> {
    let interrupted =
        || injector.should_fail(root.0, node, attempt) || cancel.is_some_and(InterruptFlag::is_set);
    // A planned kill takes the node down even when its partition holds no
    // rows — without this check an empty-input attempt would never reach a
    // batch boundary and the injection would silently not fire.
    if interrupted() {
        return Err(WorkerError::Interrupted);
    }
    let ctx = ExecCtx { catalog, node, interrupted: &interrupted };
    let mut memo: HashMap<EOpId, Vec<Row>> = HashMap::new();

    for &m in members {
        let op = plan.op(m);
        // Resolve inputs: in-stage producers from the memo, materialized
        // producers from the fault-tolerant store. The coordinator's
        // input check ran `get` on every cross-stage input before
        // deploying this worker — but a concurrent reader can demote the
        // segment between that check and this read (corruption discovered
        // on `get`), so a miss here is a recoverable lost-input, not a
        // bug.
        let mut stored: Vec<Option<Arc<Vec<Row>>>> = Vec::with_capacity(op.inputs.len());
        for p in &op.inputs {
            if members.contains(p) {
                stored.push(None);
            } else {
                match store.get(p.0, node) {
                    Some(arc) => stored.push(Some(arc)),
                    None => return Err(WorkerError::InputLost(p.0)),
                }
            }
        }
        let slices: Vec<&[Row]> = op
            .inputs
            .iter()
            .zip(&stored)
            .map(|(p, s)| match s {
                Some(arc) => arc.as_slice(),
                None => memo[p].as_slice(),
            })
            .collect();
        let out = execute(&op.kind, &slices, &ctx)?;
        memo.insert(m, out);
    }
    Ok(memo.remove(&root).expect("root is a member"))
}
