//! Deterministic failure injection for the execution engine.
//!
//! The paper injects process kills from pre-generated traces. Wall-clock
//! traces make in-process tests flaky, so the engine injects failures at a
//! *logical* coordinate instead: `(stage, node, attempt)` — kill node
//! `node` while it executes the sub-plan rooted at `stage` for the
//! `attempt`-th time. This exercises exactly the same recovery code paths
//! (partial work discarded, redeployment, re-execution from the last
//! materialized intermediate) with perfectly reproducible schedules; the
//! time-domain behaviour is the discrete-event simulator's job
//! (`ftpde-sim`).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sync::plain::Mutex;

/// A planned node kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Injection {
    /// Root operator id of the sub-plan (stage) being executed.
    pub stage: u32,
    /// The node to kill.
    pub node: usize,
    /// Which execution attempt of that (stage, node) to kill (0 = first).
    pub attempt: u32,
}

/// A deterministic failure injector shared by all worker threads.
#[derive(Debug, Default)]
pub struct FailureInjector {
    planned: HashSet<Injection>,
    fired: Mutex<Vec<Injection>>,
}

impl FailureInjector {
    /// No failures at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fails exactly the given coordinates.
    pub fn with(injections: impl IntoIterator<Item = Injection>) -> Self {
        FailureInjector { planned: injections.into_iter().collect(), fired: Mutex::new(Vec::new()) }
    }

    /// Randomly kills first attempts: every `(stage, node)` pair in
    /// `stages × nodes` fails its first execution with probability `p`,
    /// drawn deterministically from `seed`. (Only first attempts are
    /// killed so every query eventually terminates, mirroring the paper's
    /// one-or-two-concurrent-failures regime, §2.2.)
    pub fn random_first_attempts(stages: &[u32], nodes: usize, p: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut planned = HashSet::new();
        for &stage in stages {
            for node in 0..nodes {
                if rng.gen::<f64>() < p {
                    planned.insert(Injection { stage, node, attempt: 0 });
                }
            }
        }
        FailureInjector { planned, fired: Mutex::new(Vec::new()) }
    }

    /// `true` iff this `(stage, node, attempt)` execution should be killed.
    /// Recording is idempotent per coordinate.
    pub fn should_fail(&self, stage: u32, node: usize, attempt: u32) -> bool {
        let inj = Injection { stage, node, attempt };
        if self.planned.contains(&inj) {
            let mut fired = self.fired.lock();
            if !fired.contains(&inj) {
                fired.push(inj);
            }
            true
        } else {
            false
        }
    }

    /// The injections that actually fired, in firing order.
    pub fn fired(&self) -> Vec<Injection> {
        self.fired.lock().clone()
    }

    /// Number of planned injections.
    pub fn planned_count(&self) -> usize {
        self.planned.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_injection_fires_once_per_coordinate() {
        let inj = FailureInjector::with([Injection { stage: 5, node: 2, attempt: 0 }]);
        assert!(inj.should_fail(5, 2, 0));
        assert!(inj.should_fail(5, 2, 0)); // still true (same coordinate)
        assert!(!inj.should_fail(5, 2, 1)); // retry survives
        assert!(!inj.should_fail(5, 1, 0));
        assert_eq!(inj.fired().len(), 1, "recorded once");
    }

    #[test]
    fn none_never_fires() {
        let inj = FailureInjector::none();
        assert!(!inj.should_fail(0, 0, 0));
        assert!(inj.fired().is_empty());
        assert_eq!(inj.planned_count(), 0);
    }

    #[test]
    fn random_plan_is_deterministic_and_respects_probability() {
        let stages = [1u32, 2, 3, 4];
        let a = FailureInjector::random_first_attempts(&stages, 10, 0.5, 9);
        let b = FailureInjector::random_first_attempts(&stages, 10, 0.5, 9);
        assert_eq!(a.planned, b.planned);
        // 40 coordinates at p=0.5: expect roughly half.
        assert!((10..=30).contains(&a.planned_count()), "{}", a.planned_count());
        let none = FailureInjector::random_first_attempts(&stages, 10, 0.0, 9);
        assert_eq!(none.planned_count(), 0);
        let all = FailureInjector::random_first_attempts(&stages, 10, 1.0, 9);
        assert_eq!(all.planned_count(), 40);
    }

    #[test]
    fn random_plan_only_kills_first_attempts() {
        let inj = FailureInjector::random_first_attempts(&[7], 4, 1.0, 3);
        for node in 0..4 {
            assert!(inj.should_fail(7, node, 0));
            assert!(!inj.should_fail(7, node, 1));
        }
    }
}
