//! Engine execution plans: DAGs of physical operators with real
//! semantics, mirroring the abstract [`ftpde_core::dag::PlanDag`] so the
//! fault-tolerance machinery (materialization configurations, collapsed
//! plans) applies unchanged.
//!
//! Binding rules in the engine:
//!
//! * **Scans** are non-materializable — base tables are already stored.
//! * **Non-sink aggregations** are *always materialized*: their output
//!   must be globally gathered and broadcast anyway (the engine-level
//!   analogue of the paper's always-materialized repartition operators,
//!   §2.1).
//! * **Sinks** are non-materializable: the coordinator assembles the query
//!   result directly.
//! * Everything else (joins, filters, projections) is free.

use crate::expr::Expr;
use crate::table::{Catalog, Distribution};
use ftpde_core::dag::PlanDag;
use ftpde_core::operator::Binding;

/// Identifier of an operator inside an [`EnginePlan`]. Matches the
/// positions (and therefore the [`ftpde_core::operator::OpId`]s) of the
/// mirrored cost-model plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EOpId(pub u32);

impl EOpId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of an expression.
    Sum,
    /// Row count (the expression is ignored).
    Count,
    /// Minimum of an expression.
    Min,
    /// Maximum of an expression.
    Max,
}

impl AggFunc {
    /// The function used to merge per-node partial accumulators: counts
    /// merge by summation, everything else by itself.
    pub fn merge_func(self) -> AggFunc {
        match self {
            AggFunc::Count => AggFunc::Sum,
            f => f,
        }
    }
}

/// One aggregate: a function over an input expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Agg {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated expression (ignored for `Count`).
    pub expr: Expr,
}

/// Physical operator kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Scans a base table partition, optionally filtering and projecting.
    Scan {
        /// Catalog table name.
        table: String,
        /// Row filter.
        filter: Option<Expr>,
        /// Column projection (indices into the table row).
        project: Option<Vec<usize>>,
    },
    /// Filters the single input by a predicate.
    Filter {
        /// The predicate.
        predicate: Expr,
    },
    /// Maps the single input through expressions.
    Project {
        /// One expression per output column.
        exprs: Vec<Expr>,
    },
    /// Hash join: builds on input 0, probes with input 1; the output row
    /// is the build row concatenated with the probe row.
    HashJoin {
        /// Join-key column of the build input.
        build_key: usize,
        /// Join-key column of the probe input.
        probe_key: usize,
        /// Residual predicate over the concatenated output row.
        residual: Option<Expr>,
    },
    /// Hash aggregation over the single input: groups by integer columns,
    /// producing `group_cols ++ accumulators` rows (per-node partials that
    /// the coordinator merges globally).
    HashAgg {
        /// Grouping columns (must hold integer values).
        group_cols: Vec<usize>,
        /// The aggregates.
        aggs: Vec<Agg>,
    },
    /// Top-k of the single input by one sort column (ties broken by the
    /// full row for determinism). Per-node partials are globally merged
    /// by the coordinator, like aggregations.
    TopK {
        /// The sort column.
        sort_col: usize,
        /// `true` = ascending (smallest first).
        ascending: bool,
        /// How many rows to keep.
        k: usize,
    },
}

impl OpKind {
    /// `true` iff this operator's per-node outputs must be gathered and
    /// merged globally by the coordinator (aggregations and top-k).
    pub fn is_gather(&self) -> bool {
        matches!(self, OpKind::HashAgg { .. } | OpKind::TopK { .. })
    }
}

/// One operator of an engine plan.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOp {
    /// Display name.
    pub name: String,
    /// Semantics.
    pub kind: OpKind,
    /// Producer operators.
    pub inputs: Vec<EOpId>,
    /// Materialization binding (see module docs for the defaults).
    pub binding: Binding,
}

/// A DAG of physical operators.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnginePlan {
    ops: Vec<EngineOp>,
    consumers: Vec<Vec<EOpId>>,
}

impl EnginePlan {
    /// Creates an empty plan; add operators with [`EnginePlan::add`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operator with the default binding for its kind (see module
    /// docs) and returns its id. Inputs must already exist.
    pub fn add(&mut self, name: impl Into<String>, kind: OpKind, inputs: &[EOpId]) -> EOpId {
        let binding = match kind {
            OpKind::Scan { .. } => Binding::NonMaterializable,
            // Gather points are re-bound for sinks in `finish`.
            ref k if k.is_gather() => Binding::AlwaysMaterialized,
            _ => Binding::Free,
        };
        self.add_bound(name, kind, inputs, binding)
    }

    /// Adds an operator with an explicit binding.
    ///
    /// # Panics
    /// Panics on unknown input ids.
    pub fn add_bound(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: &[EOpId],
        binding: Binding,
    ) -> EOpId {
        let id = EOpId(self.ops.len() as u32);
        for inp in inputs {
            assert!(inp.index() < self.ops.len(), "unknown input {inp:?}");
            self.consumers[inp.index()].push(id);
        }
        self.ops.push(EngineOp { name: name.into(), kind, inputs: inputs.to_vec(), binding });
        self.consumers.push(Vec::new());
        id
    }

    /// Finalizes the plan: sinks are re-bound to non-materializable (their
    /// output is the query result, assembled by the coordinator).
    pub fn finish(mut self) -> Self {
        for i in 0..self.ops.len() {
            if self.consumers[i].is_empty() {
                self.ops[i].binding = Binding::NonMaterializable;
            }
        }
        self
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` iff the plan has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operator with the given id.
    pub fn op(&self, id: EOpId) -> &EngineOp {
        &self.ops[id.index()]
    }

    /// Operator ids in topological (insertion) order.
    pub fn op_ids(&self) -> impl Iterator<Item = EOpId> {
        (0..self.ops.len() as u32).map(EOpId)
    }

    /// The consumers of an operator.
    pub fn consumers(&self, id: EOpId) -> &[EOpId] {
        &self.consumers[id.index()]
    }

    /// The sink operators (no consumers).
    pub fn sinks(&self) -> Vec<EOpId> {
        self.op_ids().filter(|&id| self.consumers(id).is_empty()).collect()
    }

    /// Mirrors the plan as a cost-model [`PlanDag`] with the same shape,
    /// names and bindings. Costs are unit-valued: the engine uses the
    /// mirror only for structure (collapsing into stages); when a real
    /// cost model is available, build the `PlanDag` from it instead and
    /// keep ids aligned.
    pub fn to_plan_dag(&self) -> PlanDag {
        let mut b = PlanDag::builder();
        for op in &self.ops {
            let core_inputs: Vec<ftpde_core::operator::OpId> =
                op.inputs.iter().map(|i| ftpde_core::operator::OpId(i.0)).collect();
            let mut proto = ftpde_core::operator::Operator::free(op.name.clone(), 1.0, 1.0);
            proto.binding = op.binding;
            b.add(proto, &core_inputs).expect("engine plans are structurally valid");
        }
        b.build().expect("non-empty plan")
    }

    /// Statically derives each operator's output distribution under
    /// `catalog`'s table layout.
    ///
    /// # Panics
    /// Panics if a scanned table is missing from the catalog.
    pub fn distributions(&self, catalog: &Catalog) -> Vec<Distribution> {
        let mut out: Vec<Distribution> = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let d = match &op.kind {
                OpKind::Scan { table, .. } => catalog.table(table).distribution(),
                OpKind::Filter { .. } | OpKind::Project { .. } => out[op.inputs[0].index()],
                OpKind::HashJoin { .. } => {
                    let l = out[op.inputs[0].index()];
                    let r = out[op.inputs[1].index()];
                    if l == Distribution::Partitioned || r == Distribution::Partitioned {
                        Distribution::Partitioned
                    } else {
                        Distribution::Replicated
                    }
                }
                // Gather points are globally merged and broadcast.
                OpKind::HashAgg { .. } | OpKind::TopK { .. } => Distribution::Replicated,
            };
            out.push(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::PartitionedTable;
    use ftpde_store::value::int_row;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(PartitionedTable::hash_partitioned(
            "fact",
            (0..100).map(|k| int_row(&[k, k % 7])).collect(),
            0,
            4,
        ));
        c.register(PartitionedTable::replicated("dim", (0..7).map(|k| int_row(&[k])).collect(), 4));
        c
    }

    fn join_plan() -> EnginePlan {
        let mut p = EnginePlan::new();
        let dim = p.add(
            "scan dim",
            OpKind::Scan { table: "dim".into(), filter: None, project: None },
            &[],
        );
        let fact = p.add(
            "scan fact",
            OpKind::Scan { table: "fact".into(), filter: None, project: None },
            &[],
        );
        let join = p.add(
            "join",
            OpKind::HashJoin { build_key: 0, probe_key: 1, residual: None },
            &[dim, fact],
        );
        p.add(
            "agg",
            OpKind::HashAgg {
                group_cols: vec![0],
                aggs: vec![Agg { func: AggFunc::Count, expr: Expr::lit(1) }],
            },
            &[join],
        );
        p.finish()
    }

    #[test]
    fn default_bindings() {
        let p = join_plan();
        assert_eq!(p.op(EOpId(0)).binding, Binding::NonMaterializable); // scan
        assert_eq!(p.op(EOpId(2)).binding, Binding::Free); // join
                                                           // sink agg re-bound by finish()
        assert_eq!(p.op(EOpId(3)).binding, Binding::NonMaterializable);
    }

    #[test]
    fn mid_plan_agg_stays_always_materialized() {
        let mut p = EnginePlan::new();
        let s =
            p.add("scan", OpKind::Scan { table: "fact".into(), filter: None, project: None }, &[]);
        let a = p.add("agg", OpKind::HashAgg { group_cols: vec![], aggs: vec![] }, &[s]);
        p.add("filter", OpKind::Filter { predicate: Expr::lit(1) }, &[a]);
        let p = p.finish();
        assert_eq!(p.op(a).binding, Binding::AlwaysMaterialized);
    }

    #[test]
    fn mirror_plan_dag_preserves_shape_and_bindings() {
        let p = join_plan();
        let dag = p.to_plan_dag();
        assert_eq!(dag.len(), p.len());
        assert_eq!(dag.free_count(), 1); // only the join
        for id in p.op_ids() {
            let core = ftpde_core::operator::OpId(id.0);
            assert_eq!(dag.op(core).name, p.op(id).name);
            assert_eq!(dag.op(core).binding, p.op(id).binding);
            assert_eq!(dag.inputs(core).len(), p.op(id).inputs.len(),);
        }
    }

    #[test]
    fn distribution_analysis() {
        let p = join_plan();
        let d = p.distributions(&catalog());
        assert_eq!(d[0], Distribution::Replicated); // dim scan
        assert_eq!(d[1], Distribution::Partitioned); // fact scan
        assert_eq!(d[2], Distribution::Partitioned); // join
        assert_eq!(d[3], Distribution::Replicated); // agg (merged)
    }

    #[test]
    fn sinks_and_consumers() {
        let p = join_plan();
        assert_eq!(p.sinks(), vec![EOpId(3)]);
        assert_eq!(p.consumers(EOpId(2)), &[EOpId(3)]);
    }

    #[test]
    #[should_panic(expected = "unknown input")]
    fn unknown_input_panics() {
        let mut p = EnginePlan::new();
        p.add("bad", OpKind::Filter { predicate: Expr::lit(1) }, &[EOpId(5)]);
    }

    #[test]
    fn merge_funcs() {
        assert_eq!(AggFunc::Count.merge_func(), AggFunc::Sum);
        assert_eq!(AggFunc::Sum.merge_func(), AggFunc::Sum);
        assert_eq!(AggFunc::Min.merge_func(), AggFunc::Min);
        assert_eq!(AggFunc::Max.merge_func(), AggFunc::Max);
    }
}
