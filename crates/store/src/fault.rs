//! [`FaultStore`]: a fault-injecting [`StoreBackend`] decorator.
//!
//! The simulation harness drives the real engine against a real backend
//! and needs storage to misbehave *on command, deterministically*. This
//! decorator wraps any inner backend and injects the four storage fault
//! shapes of the harness's schedule vocabulary at logical coordinates —
//! a `(op, node)` slot plus, for reads, a zero-based access ordinal —
//! never at wall-clock times:
//!
//! * **torn write** — the next put to the slot commits torn: metadata
//!   still says present ([`StoreBackend::contains`] is true), but the
//!   first read discovers the damage, records a [`CorruptSegment`] and
//!   demotes the slot to absent. This is the §2.2 rewind trigger.
//! * **lost put** — the next put to the slot is silently dropped: the
//!   slot reads as absent with *no* corruption report (a failed I/O the
//!   device never surfaced). The engine recovers through its missing-
//!   input rewind path rather than the corruption path.
//! * **corrupt read** — the `nth` read of the slot (after arming) fails
//!   its checksum: corruption recorded, slot demoted, `None` returned.
//!   Ordinal 0 hits the coordinator's input pre-check; higher ordinals
//!   survive until a worker-side read.
//! * **delayed I/O** — each of the next `uses` accesses of the slot
//!   advances the process [`VirtualClock`](crate::sync::clock) by a
//!   fixed number of virtual milliseconds: a straggling device that
//!   stretches observed spans without one real sleep.
//!
//! All bookkeeping lives behind one mutex, and
//! [`drain_corruptions`](StoreBackend::drain_corruptions) returns
//! injected corruptions in sorted `(op, node, reason)` order — worker
//! threads discover faults in racy order, and the harness's determinism
//! oracle (FT301) must not see that race.
//!
//! The decorator also carries the harness's *deliberately wrong*
//! recovery mode, [`StoreBug::ServeCorruptData`]: instead of demoting a
//! damaged slot, serve deterministically mutated rows as if the checksum
//! pass were disabled. The engine then never triggers the §2.2 rewind
//! and completes with wrong output — exactly the class of bug the
//! harness's result-divergence oracle (FT302) exists to catch, and the
//! canonical seeded entry of the committed bug base.

use crate::sync::{clock, Mutex};
use crate::{CorruptSegment, Row, StoreBackend, StoreStats};
use std::time::Duration;

use crate::sync::plain::Arc;

/// A deliberately wrong storage behavior, for harness self-tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreBug {
    /// Correct behavior: damaged slots demote and report.
    #[default]
    None,
    /// Checksum verification "disabled": a slot hit by a torn-write or
    /// corrupt-read fault serves deterministically mutated rows instead
    /// of demoting, so the engine never learns anything went wrong.
    ServeCorruptData,
}

/// Why a slot is currently demoted (suppressed until the next put).
#[derive(Debug, Clone)]
struct Demoted {
    op: u32,
    node: usize,
    /// `Some(reason)`: damage not yet discovered — `contains` still
    /// reports true (torn write: metadata lies) and the first `get`
    /// records the corruption. `None`: already discovered, or lost
    /// silently (lost put) — the slot simply reads absent.
    pending_reason: Option<String>,
}

/// One armed delayed-I/O fault.
#[derive(Debug, Clone, Copy)]
struct Delay {
    op: u32,
    node: usize,
    virtual_ms: u64,
    uses_left: u32,
    fired: bool,
}

#[derive(Debug, Default)]
struct FaultState {
    /// Slots whose *next* put commits torn.
    torn: Vec<(u32, usize)>,
    /// Slots whose *next* put is silently dropped.
    lost: Vec<(u32, usize)>,
    /// `(op, node, reads_remaining)` — fires when the counter hits zero.
    corrupt_get: Vec<(u32, usize, u32)>,
    delays: Vec<Delay>,
    demoted: Vec<Demoted>,
    /// Injected corruptions awaiting drain.
    log: Vec<CorruptSegment>,
    /// Total injected corruptions ever recorded (for `stats`).
    injected: u64,
    /// Descriptions of faults that have taken effect, in firing order.
    fired: Vec<String>,
    bug: StoreBug,
}

impl FaultState {
    fn demoted_idx(&self, op: u32, node: usize) -> Option<usize> {
        self.demoted.iter().position(|d| d.op == op && d.node == node)
    }

    /// Applies armed write faults after a put made `(op, node)` visible.
    fn after_put(&mut self, op: u32, node: usize) {
        // A successful rewrite heals any previous demotion first.
        if let Some(i) = self.demoted_idx(op, node) {
            self.demoted.swap_remove(i);
        }
        if let Some(i) = self.torn.iter().position(|&s| s == (op, node)) {
            self.torn.swap_remove(i);
            self.fired.push(format!("torn write op {op} node {node}"));
            self.demoted.push(Demoted {
                op,
                node,
                pending_reason: Some("torn write (injected)".to_string()),
            });
        } else if let Some(i) = self.lost.iter().position(|&s| s == (op, node)) {
            self.lost.swap_remove(i);
            self.fired.push(format!("lost put op {op} node {node}"));
            self.demoted.push(Demoted { op, node, pending_reason: None });
        }
    }

    fn record(&mut self, op: u32, node: usize, reason: &str) {
        self.injected += 1;
        self.log.push(CorruptSegment { op, node: Some(node), reason: reason.to_string() });
    }
}

/// Fault-injecting decorator over any [`StoreBackend`]. See the module
/// docs for the fault vocabulary and determinism contract.
#[derive(Debug)]
pub struct FaultStore<'a> {
    inner: &'a dyn StoreBackend,
    st: Mutex<FaultState>,
}

impl<'a> FaultStore<'a> {
    /// Wraps `inner` with no faults armed.
    pub fn new(inner: &'a dyn StoreBackend) -> Self {
        FaultStore { inner, st: Mutex::new(FaultState::default()) }
    }

    /// Arms a torn write against the next put to `(op, node)`.
    pub fn arm_torn(&self, op: u32, node: usize) {
        self.st.lock().torn.push((op, node));
    }

    /// Arms a silent loss of the next put to `(op, node)`.
    pub fn arm_lost_put(&self, op: u32, node: usize) {
        self.st.lock().lost.push((op, node));
    }

    /// Arms a checksum failure on the `nth_get`-th read (zero-based,
    /// counted from arming) of `(op, node)`.
    pub fn arm_corrupt_read(&self, op: u32, node: usize, nth_get: u32) {
        self.st.lock().corrupt_get.push((op, node, nth_get));
    }

    /// Arms `uses` straggling accesses of `(op, node)`, each advancing
    /// the virtual clock by `virtual_ms`.
    pub fn arm_delay(&self, op: u32, node: usize, virtual_ms: u64, uses: u32) {
        if uses == 0 {
            return;
        }
        self.st.lock().delays.push(Delay { op, node, virtual_ms, uses_left: uses, fired: false });
    }

    /// Selects a deliberately wrong behavior (default: [`StoreBug::None`]).
    pub fn set_bug(&self, bug: StoreBug) {
        self.st.lock().bug = bug;
    }

    /// Descriptions of the armed faults that have taken effect so far,
    /// sorted (worker threads fire them in racy order).
    pub fn fired(&self) -> Vec<String> {
        let mut v = self.st.lock().fired.clone();
        v.sort();
        v
    }

    /// Descriptions of armed faults that have *not* fired: writes never
    /// issued, read ordinals never reached, delays never touched. The
    /// harness reports these as FT304 (a schedule that outran the run).
    pub fn unfired(&self) -> Vec<String> {
        let st = self.st.lock();
        let mut v: Vec<String> = st
            .torn
            .iter()
            .map(|&(op, node)| format!("torn write op {op} node {node}"))
            .chain(st.lost.iter().map(|&(op, node)| format!("lost put op {op} node {node}")))
            .chain(
                st.corrupt_get
                    .iter()
                    .map(|&(op, node, n)| format!("corrupt read op {op} node {node} get {n}")),
            )
            .chain(
                st.delays
                    .iter()
                    .filter(|d| !d.fired)
                    .map(|d| format!("delay op {} node {} {}ms", d.op, d.node, d.virtual_ms)),
            )
            .collect();
        v.sort();
        v
    }

    /// Mutates rows the way the [`StoreBug::ServeCorruptData`] mode
    /// serves them: bit-damage that is deterministic per row set.
    fn corrupt_copy(rows: &[Row]) -> Vec<Row> {
        use crate::value::Value;
        let mut out: Vec<Row> = rows.to_vec();
        if let Some(first) = out.first_mut() {
            let mut cells: Vec<Value> = first.to_vec();
            if let Some(cell) = cells.first_mut() {
                *cell = match *cell {
                    Value::Int(v) => Value::Int(v.wrapping_add(0x5A5A_5A5A)),
                    Value::Float(v) => Value::Float(v + 1.0e9),
                };
            }
            *first = cells.into_boxed_slice();
        }
        out
    }
}

impl StoreBackend for FaultStore<'_> {
    fn put(&self, op: u32, node: usize, rows: Vec<Row>) {
        self.inner.put(op, node, rows);
        self.st.lock().after_put(op, node);
    }

    fn put_replicated(&self, op: u32, rows: Vec<Row>, nodes: usize) {
        self.inner.put_replicated(op, rows, nodes);
        let mut st = self.st.lock();
        for node in 0..nodes {
            st.after_put(op, node);
        }
    }

    fn get(&self, op: u32, node: usize) -> Option<Arc<Vec<Row>>> {
        let mut st = self.st.lock();
        // Straggler first: a slow device is slow whether or not the read
        // then succeeds.
        if let Some(d) = st.delays.iter_mut().find(|d| d.op == op && d.node == node) {
            let ms = d.virtual_ms;
            d.uses_left -= 1;
            let first = !d.fired;
            d.fired = true;
            let done = d.uses_left == 0;
            if done {
                let i = st.delays.iter().position(|d| d.op == op && d.node == node).unwrap();
                st.delays.swap_remove(i);
            }
            if first {
                st.fired.push(format!("delay op {op} node {node} {ms}ms"));
            }
            drop(st);
            clock::advance(Duration::from_millis(ms));
            st = self.st.lock();
        }
        // Previously demoted slot: discover (and report) on first read.
        if let Some(i) = st.demoted_idx(op, node) {
            if let Some(reason) = st.demoted[i].pending_reason.take() {
                if st.bug == StoreBug::ServeCorruptData {
                    // Checksum "disabled": undo the demotion and serve
                    // damaged rows as if nothing happened.
                    st.demoted.swap_remove(i);
                    st.fired.push(format!("served corrupt data op {op} node {node}"));
                    drop(st);
                    return self
                        .inner
                        .get(op, node)
                        .map(|rows| Arc::new(Self::corrupt_copy(&rows)));
                }
                st.record(op, node, &reason);
            }
            return None;
        }
        // Armed read-ordinal fault for this slot?
        if let Some(i) = st.corrupt_get.iter().position(|&(o, n, _)| (o, n) == (op, node)) {
            if st.corrupt_get[i].2 == 0 {
                st.corrupt_get.swap_remove(i);
                if st.bug == StoreBug::ServeCorruptData {
                    st.fired.push(format!("served corrupt data op {op} node {node}"));
                    drop(st);
                    return self
                        .inner
                        .get(op, node)
                        .map(|rows| Arc::new(Self::corrupt_copy(&rows)));
                }
                st.fired.push(format!("corrupt read op {op} node {node}"));
                st.record(op, node, "checksum mismatch (injected)");
                st.demoted.push(Demoted { op, node, pending_reason: None });
                return None;
            }
            st.corrupt_get[i].2 -= 1;
        }
        drop(st);
        self.inner.get(op, node)
    }

    fn contains(&self, op: u32, node: usize) -> bool {
        let st = self.st.lock();
        match st.demoted_idx(op, node) {
            // Torn but undiscovered: metadata still says present.
            Some(i) => st.demoted[i].pending_reason.is_some() && self.inner.contains(op, node),
            None => self.inner.contains(op, node),
        }
    }

    fn clear(&self) {
        self.inner.clear();
        // Demotions die with the data; armed faults stay armed — they
        // target whatever the restarted query writes next.
        self.st.lock().demoted.clear();
    }

    fn len(&self) -> usize {
        let st = self.st.lock();
        let hidden = st
            .demoted
            .iter()
            .filter(|d| d.pending_reason.is_none() && self.inner.contains(d.op, d.node))
            .count();
        self.inner.len() - hidden
    }

    fn stats(&self) -> StoreStats {
        let mut s = self.inner.stats();
        s.corrupt_segments += self.st.lock().injected;
        s
    }

    fn drain_corruptions(&self) -> Vec<CorruptSegment> {
        let mut v = self.inner.drain_corruptions();
        v.append(&mut self.st.lock().log);
        v.sort_by(|a, b| (a.op, a.node, &a.reason).cmp(&(b.op, b.node, &b.reason)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{int_row, MemBackend, Value};

    fn rows() -> Vec<Row> {
        vec![int_row(&[7, 8]), int_row(&[9, 10])]
    }

    #[test]
    fn transparent_when_no_faults_armed() {
        let inner = MemBackend::new();
        let fs = FaultStore::new(&inner);
        assert!(fs.is_empty());
        fs.put(1, 0, vec![int_row(&[1, 2])]);
        fs.put_replicated(2, vec![int_row(&[3])], 2);
        assert_eq!(fs.len(), 3);
        assert!(fs.contains(1, 0) && fs.contains(2, 0) && fs.contains(2, 1));
        assert_eq!(fs.get(2, 1).unwrap()[0][0], Value::Int(3));
        let stats = fs.stats();
        assert_eq!(stats.logical_rows_written, 3);
        assert_eq!(stats.physical_rows_written, 2);
        fs.clear();
        assert!(fs.is_empty());
        assert!(fs.drain_corruptions().is_empty());
        assert!(fs.fired().is_empty() && fs.unfired().is_empty());
    }

    #[test]
    fn torn_write_lies_in_metadata_then_reports_on_first_read() {
        let inner = MemBackend::new();
        let fs = FaultStore::new(&inner);
        fs.arm_torn(3, 1);
        fs.put(3, 1, rows());
        // Metadata lies until the read discovers the damage.
        assert!(fs.contains(3, 1));
        assert!(fs.get(3, 1).is_none());
        assert!(!fs.contains(3, 1));
        assert_eq!(fs.len(), 0);
        let corruptions = fs.drain_corruptions();
        assert_eq!(corruptions.len(), 1);
        assert_eq!(corruptions[0].op, 3);
        assert_eq!(corruptions[0].node, Some(1));
        assert!(corruptions[0].reason.contains("torn"));
        // Reported exactly once; stays absent until rewritten.
        assert!(fs.get(3, 1).is_none());
        assert!(fs.drain_corruptions().is_empty());
        assert_eq!(fs.stats().corrupt_segments, 1);
        // A re-put heals the slot.
        fs.put(3, 1, rows());
        assert_eq!(fs.get(3, 1).unwrap().len(), 2);
        assert_eq!(fs.fired(), vec!["torn write op 3 node 1".to_string()]);
    }

    #[test]
    fn lost_put_is_silently_absent() {
        let inner = MemBackend::new();
        let fs = FaultStore::new(&inner);
        fs.arm_lost_put(4, 0);
        fs.put(4, 0, rows());
        assert!(!fs.contains(4, 0));
        assert!(fs.get(4, 0).is_none());
        assert!(fs.drain_corruptions().is_empty());
        assert_eq!(fs.stats().corrupt_segments, 0);
        fs.put(4, 0, rows());
        assert!(fs.contains(4, 0));
    }

    #[test]
    fn corrupt_read_fires_at_the_armed_ordinal() {
        let inner = MemBackend::new();
        let fs = FaultStore::new(&inner);
        fs.put(5, 0, rows());
        fs.arm_corrupt_read(5, 0, 2);
        assert!(fs.get(5, 0).is_some()); // ordinal 0
        assert!(fs.get(5, 0).is_some()); // ordinal 1
        assert!(fs.get(5, 0).is_none()); // ordinal 2: fires
        assert!(!fs.contains(5, 0));
        let corruptions = fs.drain_corruptions();
        assert_eq!(corruptions.len(), 1);
        assert!(corruptions[0].reason.contains("checksum"));
        fs.put(5, 0, rows());
        assert!(fs.get(5, 0).is_some());
    }

    #[test]
    fn delay_advances_virtual_clock_per_use() {
        let inner = MemBackend::new();
        let fs = FaultStore::new(&inner);
        fs.put(6, 0, rows());
        fs.arm_delay(6, 0, 5, 2);
        let before = clock::now();
        assert!(fs.get(6, 0).is_some());
        assert!(fs.get(6, 0).is_some());
        assert!(fs.get(6, 0).is_some()); // third access: delay exhausted
        let advanced = clock::elapsed(before);
        assert!(advanced >= Duration::from_millis(10), "{advanced:?}");
        assert!(advanced < Duration::from_millis(1000), "{advanced:?}");
        assert_eq!(fs.fired(), vec!["delay op 6 node 0 5ms".to_string()]);
        assert!(fs.unfired().is_empty());
    }

    #[test]
    fn unfired_faults_are_reported_for_ft304() {
        let inner = MemBackend::new();
        let fs = FaultStore::new(&inner);
        fs.arm_torn(1, 0);
        fs.arm_lost_put(2, 0);
        fs.arm_corrupt_read(3, 0, 1);
        fs.arm_delay(4, 0, 7, 1);
        let unfired = fs.unfired();
        assert_eq!(unfired.len(), 4);
        assert!(unfired.iter().any(|s| s.contains("torn write op 1")), "{unfired:?}");
        assert!(unfired.iter().any(|s| s.contains("delay op 4")), "{unfired:?}");
    }

    #[test]
    fn clear_drops_demotions_but_keeps_armed_faults() {
        let inner = MemBackend::new();
        let fs = FaultStore::new(&inner);
        fs.arm_torn(1, 0);
        fs.arm_torn(2, 0);
        fs.put(1, 0, rows());
        fs.clear();
        // The un-consumed arming survives the restart and hits the
        // re-written slot; the consumed one is gone.
        fs.put(1, 0, rows());
        fs.put(2, 0, rows());
        assert!(fs.get(1, 0).is_some());
        assert!(fs.get(2, 0).is_none());
    }

    #[test]
    fn serve_corrupt_data_bug_serves_mutated_rows_silently() {
        let inner = MemBackend::new();
        let fs = FaultStore::new(&inner);
        fs.set_bug(StoreBug::ServeCorruptData);
        fs.arm_torn(7, 0);
        fs.put(7, 0, rows());
        let served = fs.get(7, 0).expect("bug mode serves data");
        // First cell deterministically damaged, rest intact.
        assert_ne!(served[0][0], Value::Int(7));
        assert_eq!(served[0][1], Value::Int(8));
        assert_eq!(served[1][0], Value::Int(9));
        // No corruption surfaced anywhere — that is the bug.
        assert!(fs.drain_corruptions().is_empty());
        assert_eq!(fs.stats().corrupt_segments, 0);
        assert!(fs.contains(7, 0));
        // Same for the read-ordinal shape.
        fs.put(8, 0, rows());
        fs.arm_corrupt_read(8, 0, 0);
        let served = fs.get(8, 0).expect("bug mode serves data");
        assert_ne!(served[0][0], Value::Int(7));
        assert!(fs.drain_corruptions().is_empty());
        let fired = fs.fired();
        assert_eq!(fired.iter().filter(|s| s.contains("served corrupt")).count(), 2, "{fired:?}");
    }

    #[test]
    fn drained_corruptions_are_sorted() {
        let inner = MemBackend::new();
        let fs = FaultStore::new(&inner);
        for (op, node) in [(9, 1), (2, 0), (9, 0)] {
            fs.arm_torn(op, node);
            fs.put(op, node, rows());
            assert!(fs.get(op, node).is_none());
        }
        let drained = fs.drain_corruptions();
        let keys: Vec<(u32, Option<usize>)> = drained.iter().map(|c| (c.op, c.node)).collect();
        assert_eq!(keys, vec![(2, Some(0)), (9, Some(0)), (9, Some(1))]);
    }
}
