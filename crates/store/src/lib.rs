//! # ftpde-store — durable, pluggable checkpoint storage
//!
//! The paper's cost model prices every materialization decision against
//! *fault-tolerant storage* (§2.2; the evaluation uses an iSCSI-backed
//! store, §5.1): a materialized intermediate is only worth its `tm(o)`
//! write cost if it still exists after the failure it insures against.
//! This crate provides that storage layer behind one trait:
//!
//! * [`MemBackend`] — the engine's historical `Mutex<HashMap>` behavior,
//!   extracted. Fast, volatile, the semantic baseline.
//! * [`DiskBackend`] — per-(operator, partition) segment files with
//!   CRC-32 checksums, optional LZ compression, an atomic
//!   write-temp-then-rename commit protocol and a JSON manifest, so a
//!   **brand-new process** can reopen the directory and resume a query
//!   from its committed checkpoints ([`disk`] has the full contract).
//!
//! Corruption is a first-class, *recoverable* condition: a torn or
//! bit-flipped segment is demoted to "not materialized" and reported via
//! [`StoreBackend::drain_corruptions`]; the engine re-executes the
//! producing stage and emits a `segment_corrupt` observability event.
//! Backends also meter themselves ([`StoreStats`]) — the measured write
//! throughput is the observed `tm(o)` that `ftpde-obs`'s calibration
//! layer compares against the cost model's assumed constants.

pub mod codec;
pub mod compress;
pub mod disk;
pub mod fault;
pub mod mem;
pub mod stats;
pub mod sync;
pub mod value;

use std::fmt;

use crate::sync::plain::Arc;

pub use disk::{inspect, verify, DiskBackend, Manifest, ManifestEntry, StoreReport};
pub use fault::{FaultStore, StoreBug};
pub use mem::MemBackend;
pub use stats::StoreStats;
pub use value::{int_row, row, Row, Value};

/// A segment the store found unusable (checksum mismatch, torn write,
/// undecodable payload, unreadable manifest). To the engine this means
/// "re-execute the producer", never "fail the query".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptSegment {
    /// Producing operator id (`u32::MAX` when the manifest itself was
    /// unreadable and the whole directory was reset).
    pub op: u32,
    /// Partition index; `None` for a replicated segment (or manifest).
    pub node: Option<usize>,
    /// Human-readable diagnosis.
    pub reason: String,
}

/// Checkpoint storage for materialized operator outputs, keyed by
/// `(operator id, node index)`.
///
/// Implementations are internally synchronized (`&self` methods callable
/// from the engine's per-node worker threads) and must satisfy:
///
/// * **Read-your-writes**: after `put(op, n, rows)` returns, `get(op, n)`
///   returns exactly those rows, bit-identically, until `clear` or a
///   replacing put.
/// * **All-or-nothing visibility**: a slot either holds a complete,
///   checksum-clean segment or reads as absent. Partial writes must
///   never surface.
/// * **Corruption demotion**: integrity failures make the slot absent
///   and are reported through [`drain_corruptions`]
///   (never a panic or an `Err` on the read path).
///
/// [`drain_corruptions`]: StoreBackend::drain_corruptions
pub trait StoreBackend: Send + Sync + fmt::Debug {
    /// Stores one partition of an operator's output, replacing any
    /// previous segment in that slot.
    fn put(&self, op: u32, node: usize, rows: Vec<Row>);

    /// Makes one row set visible on all `nodes` partitions (the gather
    /// pattern). Counts `nodes` logical writes but backends may — and
    /// both built-ins do — store a single physical copy.
    fn put_replicated(&self, op: u32, rows: Vec<Row>, nodes: usize);

    /// Reads a partition, or `None` if absent (including "was committed
    /// but found corrupt", which also records a [`CorruptSegment`]).
    fn get(&self, op: u32, node: usize) -> Option<Arc<Vec<Row>>>;

    /// Whether a committed segment covers `(op, node)`. A cheap metadata
    /// check: integrity is enforced on `get`.
    fn contains(&self, op: u32, node: usize) -> bool;

    /// Drops all segments (coarse query restart). Lifetime [`stats`]
    /// survive.
    ///
    /// [`stats`]: StoreBackend::stats
    fn clear(&self);

    /// Number of visible `(op, node)` slots.
    fn len(&self) -> usize;

    /// Whether no slots are visible.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative accounting (rows/bytes, fsyncs, measured throughput).
    fn stats(&self) -> StoreStats;

    /// Takes (and clears) the corruptions observed since the last drain,
    /// so the engine can surface each exactly once as an obs event.
    fn drain_corruptions(&self) -> Vec<CorruptSegment>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends must expose identical trait-level behavior; the
    /// engine only ever sees `&dyn StoreBackend`.
    fn exercise(store: &dyn StoreBackend) {
        assert!(store.is_empty());
        store.put(1, 0, vec![int_row(&[1, 2])]);
        store.put_replicated(2, vec![int_row(&[3])], 2);
        assert_eq!(store.len(), 3);
        assert!(store.contains(1, 0) && store.contains(2, 0) && store.contains(2, 1));
        assert_eq!(store.get(2, 1).unwrap()[0][0], Value::Int(3));
        let stats = store.stats();
        assert_eq!(stats.logical_rows_written, 3);
        assert_eq!(stats.physical_rows_written, 2);
        store.clear();
        assert!(store.is_empty());
        assert!(store.drain_corruptions().is_empty());
    }

    #[test]
    fn mem_backend_object_safety_and_contract() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn fault_store_with_nothing_armed_keeps_the_contract() {
        let inner = MemBackend::new();
        exercise(&FaultStore::new(&inner));
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn disk_backend_object_safety_and_contract() {
        exercise(&DiskBackend::ephemeral().unwrap());
    }
}
