//! Synchronization shim: `parking_lot` normally, `loom` under
//! `--cfg loom`.
//!
//! [`MemBackend`](crate::MemBackend) guards its segment map with this
//! module's [`Mutex`] so the loom job (`RUSTFLAGS="--cfg loom"`) can
//! model-check the *real* backend under adversarial interleavings —
//! concurrent partition writers, a reader racing a `clear`, replicated
//! puts — instead of a re-implementation that could drift from the code
//! under test. Normal builds compile to `parking_lot` with zero overhead.
//!
//! The API is the parking_lot shape (`lock()` returns the guard directly;
//! no poisoning): the loom branch unwraps poison errors, which matches
//! parking_lot's semantics of not poisoning at all.
//!
//! [`plain`] re-exports the primitives that are *not* part of the
//! loom-modeled protocol (refcounts, throughput counters, the disk
//! backend's coarse manifest lock), and [`clock`] is the crate's view of
//! the workspace wall-clock seam — see `ftpde_obs::sync` for both
//! stories. The `FT201`/`FT202` source lints (`ftpde lint --source`)
//! enforce that library code in this crate uses these modules rather
//! than reaching for `std::sync`/`parking_lot`/`Instant::now` directly.

#[cfg(not(loom))]
pub use parking_lot::{Mutex, MutexGuard};

#[cfg(loom)]
mod loom_impl {
    /// Guard returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = loom::sync::MutexGuard<'a, T>;

    /// A loom-instrumented mutex with parking_lot's non-poisoning API.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub fn new(value: T) -> Self {
            Mutex(loom::sync::Mutex::new(value))
        }

        /// Acquires the lock. Every acquisition is a loom schedule point.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }
}

#[cfg(loom)]
pub use loom_impl::{Mutex, MutexGuard};

pub use ftpde_obs::sync::clock;

/// `std`/`parking_lot` primitives used identically in every build —
/// synchronization documented as outside the loom-modeled protocol.
/// See [`ftpde_obs::sync::plain`] for the rationale.
pub mod plain {
    pub use std::sync::atomic::{AtomicU64, Ordering};
    pub use std::sync::{Arc, OnceLock};

    pub use parking_lot::Mutex;
}
