//! Backend-agnostic storage accounting.
//!
//! Every [`crate::StoreBackend`] keeps one [`StoreStats`] and exposes it
//! via `stats()`. The split between *logical* and *physical* writes is
//! the point: `put_replicated` makes one partition visible on `n` nodes,
//! which is `n` logical writes but (in both current backends) a single
//! physical copy. The old engine-internal store conflated the two and
//! under-reported write amplification; here both are first-class, and
//! byte volumes are computed from the codec's encoded length so the
//! in-memory and on-disk backends report comparable numbers.
//!
//! Measured write throughput (`write_bytes_per_s`) is what the paper
//! calls `tm(o)` — the cost of materializing to fault-tolerant storage —
//! and is what `obs::calibrate` uses to ground the cost model's assumed
//! constant in observed disk behavior.

use ftpde_obs::{MetricsRegistry, Summary};
use serde::{Deserialize, Serialize};

/// Pre-resolved handles into the process-global registry
/// ([`ftpde_obs::global`]) for the always-on store metrics. Both
/// backends record through the `record_*` helpers below; resolution
/// happens once per process, after which every update is a lock-free
/// atomic op.
///
/// Throughput is derivable from these: physical write MB/s is
/// `store.put_bytes_total / histogram("store.put_seconds").sum` (and
/// symmetrically for reads) — the live view of the paper's `tm(o)`.
#[cfg(not(loom))]
#[derive(Debug)]
struct LiveStoreMetrics {
    /// `store.puts_total` — put/put_replicated calls.
    puts: ftpde_obs::Counter,
    /// `store.gets_total` — successful gets.
    gets: ftpde_obs::Counter,
    /// `store.put_bytes_total` — physical encoded bytes written.
    put_bytes: ftpde_obs::Counter,
    /// `store.get_bytes_total` — encoded bytes read back.
    get_bytes: ftpde_obs::Counter,
    /// `store.fsyncs_total` — durability barriers issued.
    fsyncs: ftpde_obs::Counter,
    /// `store.segments_committed_total`.
    segments_committed: ftpde_obs::Counter,
    /// `store.corrupt_segments_total`.
    corrupt_segments: ftpde_obs::Counter,
    /// `store.put_seconds` — wall seconds per write path entry.
    put_seconds: ftpde_obs::HistogramHandle,
    /// `store.get_seconds` — wall seconds per successful read.
    get_seconds: ftpde_obs::HistogramHandle,
}

/// The singleton [`LiveStoreMetrics`].
#[cfg(not(loom))]
fn live() -> &'static LiveStoreMetrics {
    static LIVE: crate::sync::plain::OnceLock<LiveStoreMetrics> =
        crate::sync::plain::OnceLock::new();
    LIVE.get_or_init(|| {
        let g = ftpde_obs::global();
        LiveStoreMetrics {
            puts: g.counter("store.puts_total"),
            gets: g.counter("store.gets_total"),
            put_bytes: g.counter("store.put_bytes_total"),
            get_bytes: g.counter("store.get_bytes_total"),
            fsyncs: g.counter("store.fsyncs_total"),
            segments_committed: g.counter("store.segments_committed_total"),
            corrupt_segments: g.counter("store.corrupt_segments_total"),
            put_seconds: g.histogram("store.put_seconds"),
            get_seconds: g.histogram("store.get_seconds"),
        }
    })
}

/// Records one physical write (a committed segment) into the global
/// registry. No-op under `--cfg loom`: the loom model checker explores
/// `MemBackend` interleavings and must not touch foreign (untracked)
/// synchronization like the global registry's `OnceLock`.
pub(crate) fn record_put(bytes: u64, elapsed_s: f64) {
    #[cfg(not(loom))]
    {
        let m = live();
        m.puts.inc();
        m.put_bytes.add(bytes);
        m.segments_committed.inc();
        m.put_seconds.observe(elapsed_s);
    }
    #[cfg(loom)]
    let _ = (bytes, elapsed_s);
}

/// Records one successful read into the global registry (loom no-op).
pub(crate) fn record_get(bytes: u64, elapsed_s: f64) {
    #[cfg(not(loom))]
    {
        let m = live();
        m.gets.inc();
        m.get_bytes.add(bytes);
        m.get_seconds.observe(elapsed_s);
    }
    #[cfg(loom)]
    let _ = (bytes, elapsed_s);
}

/// Records durability barriers into the global registry (loom no-op).
pub(crate) fn record_fsyncs(n: u64) {
    #[cfg(not(loom))]
    live().fsyncs.add(n);
    #[cfg(loom)]
    let _ = n;
}

/// Records detected segment corruption into the global registry
/// (loom no-op).
pub(crate) fn record_corrupt_segments(n: u64) {
    #[cfg(not(loom))]
    live().corrupt_segments.add(n);
    #[cfg(loom)]
    let _ = n;
}

/// Records one [`crate::DiskBackend`] reopen — manifest load plus
/// end-to-end verification of every committed segment — into the global
/// registry, so cold-start recovery cost is visible on `/metrics`:
/// `store.reopen_seconds` (histogram) and `store.segments_scanned`
/// (counter of segments verified, kept or demoted). Loom no-op. These
/// are resolved ad hoc rather than through [`LiveStoreMetrics`]: reopen
/// is a once-per-process-lifetime path, not a hot one.
pub(crate) fn record_reopen(elapsed_s: f64, segments_scanned: u64) {
    #[cfg(not(loom))]
    {
        let g = ftpde_obs::global();
        g.observe("store.reopen_seconds", elapsed_s);
        g.counter_add("store.segments_scanned", segments_scanned);
    }
    #[cfg(loom)]
    let _ = (elapsed_s, segments_scanned);
}

/// Cumulative counters of one store backend (or of a store directory
/// across process lifetimes — the disk backend persists its stats in the
/// manifest, so throughput survives a reopen).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Rows made visible to readers, counting each replica target.
    pub logical_rows_written: u64,
    /// Rows actually copied to the backing medium (one per stored copy).
    pub physical_rows_written: u64,
    /// Encoded bytes corresponding to `logical_rows_written`.
    pub logical_bytes_written: u64,
    /// Encoded bytes actually written to the backing medium.
    pub physical_bytes_written: u64,
    /// Rows returned by `get`.
    pub rows_read: u64,
    /// Encoded bytes returned by `get`.
    pub bytes_read: u64,
    /// Durability barriers issued (`File::sync_all` / directory fsyncs);
    /// always zero for the in-memory backend.
    pub fsyncs: u64,
    /// Segments atomically committed to the manifest.
    pub segments_committed: u64,
    /// Segments found corrupt (bad checksum, torn write, undecodable).
    pub corrupt_segments: u64,
    /// Wall-clock seconds spent inside write paths.
    pub write_seconds: f64,
    /// Wall-clock seconds spent inside read paths.
    pub read_seconds: f64,
}

impl StoreStats {
    /// Measured materialization throughput in bytes/s — the observed
    /// `tm(o)` of the paper's cost model. `None` until a timed write has
    /// happened.
    pub fn write_bytes_per_s(&self) -> Option<f64> {
        (self.write_seconds > 0.0 && self.physical_bytes_written > 0)
            .then(|| self.physical_bytes_written as f64 / self.write_seconds)
    }

    /// Measured read-back throughput in bytes/s.
    pub fn read_bytes_per_s(&self) -> Option<f64> {
        (self.read_seconds > 0.0 && self.bytes_read > 0)
            .then(|| self.bytes_read as f64 / self.read_seconds)
    }

    /// Logical-over-physical row ratio (how much replication inflates the
    /// visible write volume). `None` before any physical write.
    pub fn replication_amplification(&self) -> Option<f64> {
        (self.physical_rows_written > 0)
            .then(|| self.logical_rows_written as f64 / self.physical_rows_written as f64)
    }

    /// Folds the stats into a metrics registry under the `store.`
    /// namespace, from where `export::to_prometheus` renders them.
    pub fn export_metrics(&self, reg: &MetricsRegistry) {
        reg.counter_add("store.logical_rows_written_total", self.logical_rows_written);
        reg.counter_add("store.physical_rows_written_total", self.physical_rows_written);
        reg.counter_add("store.logical_bytes_written_total", self.logical_bytes_written);
        reg.counter_add("store.physical_bytes_written_total", self.physical_bytes_written);
        reg.counter_add("store.rows_read_total", self.rows_read);
        reg.counter_add("store.bytes_read_total", self.bytes_read);
        reg.counter_add("store.fsyncs_total", self.fsyncs);
        reg.counter_add("store.segments_committed_total", self.segments_committed);
        reg.counter_add("store.corrupt_segments_total", self.corrupt_segments);
        if let Some(v) = self.write_bytes_per_s() {
            reg.gauge_set("store.write_bytes_per_s", v);
            reg.observe("store.write_throughput_bytes_per_s", v);
        }
        if let Some(v) = self.read_bytes_per_s() {
            reg.gauge_set("store.read_bytes_per_s", v);
            reg.observe("store.read_throughput_bytes_per_s", v);
        }
        if let Some(v) = self.replication_amplification() {
            reg.gauge_set("store.replication_amplification", v);
        }
    }

    /// Human-readable rendering for CLI and bench output.
    pub fn to_summary(&self) -> Summary {
        let rate = |v: Option<f64>| {
            v.map_or_else(|| "n/a".to_string(), |b| format!("{:.2} MB/s", b / 1e6))
        };
        let mut s = Summary::new();
        s.banner("store stats");
        s.kv(
            "rows written (logical/physical)",
            format!("{} / {}", self.logical_rows_written, self.physical_rows_written),
        );
        s.kv(
            "bytes written (logical/physical)",
            format!("{} / {}", self.logical_bytes_written, self.physical_bytes_written),
        );
        s.kv("rows read", self.rows_read);
        s.kv("bytes read", self.bytes_read);
        s.kv("fsyncs", self.fsyncs);
        s.kv("segments committed", self.segments_committed);
        s.kv("corrupt segments", self.corrupt_segments);
        s.kv("write throughput (measured tm)", rate(self.write_bytes_per_s()));
        s.kv("read throughput", rate(self.read_bytes_per_s()));
        if let Some(a) = self.replication_amplification() {
            s.kv("replication amplification", format!("{a:.2}x"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreStats {
        StoreStats {
            logical_rows_written: 40,
            physical_rows_written: 10,
            logical_bytes_written: 4000,
            physical_bytes_written: 1000,
            rows_read: 5,
            bytes_read: 500,
            fsyncs: 3,
            segments_committed: 2,
            corrupt_segments: 1,
            write_seconds: 0.5,
            read_seconds: 0.25,
        }
    }

    #[test]
    fn derived_rates() {
        let s = sample();
        assert_eq!(s.write_bytes_per_s(), Some(2000.0));
        assert_eq!(s.read_bytes_per_s(), Some(2000.0));
        assert_eq!(s.replication_amplification(), Some(4.0));
        let zero = StoreStats::default();
        assert_eq!(zero.write_bytes_per_s(), None);
        assert_eq!(zero.read_bytes_per_s(), None);
        assert_eq!(zero.replication_amplification(), None);
    }

    #[test]
    fn metrics_export_lands_in_registry() {
        let reg = MetricsRegistry::new();
        sample().export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("store.logical_rows_written_total"), 40);
        assert_eq!(snap.counter("store.physical_rows_written_total"), 10);
        assert_eq!(snap.counter("store.fsyncs_total"), 3);
        assert_eq!(snap.counter("store.corrupt_segments_total"), 1);
        assert_eq!(snap.gauge("store.write_bytes_per_s"), Some(2000.0));
        assert_eq!(snap.gauge("store.replication_amplification"), Some(4.0));
        assert!(snap.histogram("store.write_throughput_bytes_per_s").is_some());
    }

    #[test]
    fn summary_mentions_throughput() {
        let text = sample().to_summary().render();
        assert!(text.contains("store stats"));
        assert!(text.contains("measured tm"));
        assert!(text.contains("0.00 MB/s"));
        assert!(text.contains("4.00x"));
    }

    #[test]
    fn serde_round_trip() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: StoreStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
