//! The durable backend: one segment file per materialized partition plus
//! an atomically-committed JSON manifest.
//!
//! # Layout
//!
//! ```text
//! <dir>/MANIFEST.json        committed segments + lifetime stats
//! <dir>/seg-<op>-<node>.seg  one operator partition ([`crate::codec`])
//! <dir>/seg-<op>-rep.seg     a replicated (gather) partition
//! <dir>/*.tmp                in-flight writes; never valid after a crash
//! ```
//!
//! # Commit protocol
//!
//! A put writes `<name>.tmp`, `sync_all`s it, renames it over the final
//! name, fsyncs the directory, then rewrites the manifest the same way
//! (tmp → fsync → rename → dir fsync). A segment *exists* iff the
//! committed manifest lists it; everything else in the directory is
//! garbage from an interrupted write and is swept on [`DiskBackend::open`].
//! A crash therefore leaves the store in the last committed state — the
//! exact property the engine's resume path needs.
//!
//! # Recovery contract
//!
//! `open` re-reads the manifest, CRC-verifies every listed segment and
//! *demotes* (rather than errors on) anything torn, truncated or
//! bit-flipped: the entry is dropped, the file deleted, and a
//! [`CorruptSegment`] recorded for the engine to surface as a
//! `segment_corrupt` observability event. To the coordinator a corrupt
//! segment is simply "not materialized", so the producing stage re-runs.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use ftpde_obs::Summary;
use serde::{Deserialize, Serialize};

use crate::sync::clock;
use crate::sync::plain::{Arc, AtomicU64, Mutex, Ordering};

use crate::codec::{self, encoded_rows_len};
use crate::stats::{record_corrupt_segments, record_fsyncs, record_get, record_put, StoreStats};
use crate::value::Row;
use crate::{CorruptSegment, StoreBackend};

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";
/// Manifest format version written by this build.
pub const MANIFEST_VERSION: u32 = 1;

/// One committed segment as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Producing operator id.
    pub op: u32,
    /// Partition index; `None` for a replicated segment.
    pub node: Option<usize>,
    /// Number of nodes a replicated segment serves (1 for per-node).
    pub nodes: usize,
    /// Segment file name relative to the store directory.
    pub file: String,
    /// Row count.
    pub rows: u64,
    /// Stored payload bytes (compressed size if compressed).
    pub payload_bytes: u64,
    /// CRC-32 of the stored payload.
    pub crc32: u32,
    /// Whether the payload is LZ-compressed.
    pub compressed: bool,
}

impl ManifestEntry {
    /// Whether this entry makes `(op, node)` visible.
    fn covers(&self, op: u32, node: usize) -> bool {
        self.op == op && self.node.map_or(node < self.nodes, |n| n == node)
    }
}

/// The durable root object: what a fresh process reads to resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest format version.
    pub version: u32,
    /// Lifetime stats of this directory, cumulative across reopens.
    pub stats: StoreStats,
    /// Committed segments.
    pub segments: Vec<ManifestEntry>,
}

impl Default for Manifest {
    fn default() -> Self {
        Manifest { version: MANIFEST_VERSION, stats: StoreStats::default(), segments: Vec::new() }
    }
}

#[derive(Debug, Default)]
struct DiskInner {
    manifest: Manifest,
    cache: HashMap<(u32, usize), Arc<Vec<Row>>>,
    corruptions: Vec<CorruptSegment>,
}

/// Durable checkpoint storage rooted at a directory.
#[derive(Debug)]
pub struct DiskBackend {
    dir: PathBuf,
    compress: bool,
    remove_on_drop: bool,
    inner: Mutex<DiskInner>,
}

impl DiskBackend {
    /// Opens (creating if absent) a store directory, verifying every
    /// committed segment's checksum and sweeping torn/uncommitted files.
    /// Corrupt segments are demoted to "absent" and reported via
    /// [`StoreBackend::drain_corruptions`], never as an error.
    ///
    /// # Errors
    /// Only real I/O failures (permissions, disk full) — corruption is
    /// handled, not propagated.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let open_start = clock::now();
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut corruptions = Vec::new();
        let mut manifest = match fs::read_to_string(dir.join(MANIFEST_FILE)) {
            Ok(text) => match serde_json::from_str::<Manifest>(&text) {
                Ok(m) if m.version == MANIFEST_VERSION => m,
                Ok(m) => {
                    corruptions.push(CorruptSegment {
                        op: u32::MAX,
                        node: None,
                        reason: format!("unsupported manifest version {}", m.version),
                    });
                    Manifest::default()
                }
                Err(e) => {
                    corruptions.push(CorruptSegment {
                        op: u32::MAX,
                        node: None,
                        reason: format!("manifest unreadable: {e}"),
                    });
                    Manifest::default()
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Manifest::default(),
            Err(e) => return Err(e),
        };

        // Verify every committed segment end to end; demote failures.
        let before = manifest.segments.len();
        let mut kept = Vec::with_capacity(before);
        for entry in std::mem::take(&mut manifest.segments) {
            match verify_entry(&dir, &entry) {
                Ok(()) => kept.push(entry),
                Err(reason) => {
                    let _ = fs::remove_file(dir.join(&entry.file));
                    corruptions.push(CorruptSegment { op: entry.op, node: entry.node, reason });
                }
            }
        }
        manifest.segments = kept;
        manifest.stats.corrupt_segments += corruptions.len() as u64;

        // Sweep in-flight temporaries and orphaned segment files: without
        // a manifest entry they were never committed.
        let committed: Vec<String> = manifest.segments.iter().map(|e| e.file.clone()).collect();
        for dirent in fs::read_dir(&dir)? {
            let dirent = dirent?;
            let name = dirent.file_name().to_string_lossy().into_owned();
            if name == MANIFEST_FILE {
                continue;
            }
            let orphan =
                name.ends_with(".tmp") || (name.ends_with(".seg") && !committed.contains(&name));
            if orphan {
                let _ = fs::remove_file(dirent.path());
            }
        }

        // Cold-start cost, live on `/metrics`: how long the manifest
        // load + segment verification took and how many segments it
        // walked (kept or demoted).
        crate::stats::record_reopen(clock::elapsed(open_start).as_secs_f64(), before as u64);

        let store = DiskBackend {
            dir,
            compress: cfg!(feature = "compress"),
            remove_on_drop: false,
            inner: Mutex::new(DiskInner { manifest, cache: HashMap::new(), corruptions }),
        };
        if before != store.inner.lock().manifest.segments.len() {
            let mut inner = store.inner.lock();
            store.write_manifest(&mut inner)?;
            drop(inner);
            record_fsyncs(2);
        }
        Ok(store)
    }

    /// Opens a store in a fresh unique temporary directory that is
    /// removed when the backend is dropped. Used by tests, benches and
    /// the `FTPDE_STORE_BACKEND=disk` engine default.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn ephemeral() -> std::io::Result<Self> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ftpde-store-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut store = Self::open(dir)?;
        store.remove_on_drop = true;
        Ok(store)
    }

    /// Overrides the write-side compression default (the `compress`
    /// feature flag). Reading is format-driven either way.
    #[must_use]
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compress = on;
        self
    }

    /// The directory this store is rooted at.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically persists a segment file: write `.tmp`, fsync, rename,
    /// fsync the directory. Returns bytes written. Records 2 fsyncs to
    /// the live metrics; the caller accounts them to the manifest stats
    /// (this runs with no lock held — the payload write and its fsyncs
    /// are the slow part of a put and must stay out of the critical
    /// section).
    fn commit_file(&self, name: &str, bytes: &[u8]) -> u64 {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let write = || -> std::io::Result<()> {
            let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, self.dir.join(name))?;
            sync_dir(&self.dir)?;
            Ok(())
        };
        // A put that cannot reach the medium is a store-level fault the
        // engine cannot re-execute around; fail fast like an allocator.
        write().unwrap_or_else(|e| panic!("store: failed to commit {name}: {e}"));
        record_fsyncs(2);
        bytes.len() as u64
    }

    /// Rewrites the manifest atomically. Counts 2 fsyncs into the
    /// manifest stats; the caller reports them to the live metrics
    /// *after* releasing the `inner` guard (FT214 — no `obs::global()`
    /// under a lock).
    fn write_manifest(&self, inner: &mut DiskInner) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(&inner.manifest)
            .expect("manifest serialization is infallible");
        let tmp = self.dir.join(format!("{MANIFEST_FILE}.tmp"));
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, self.dir.join(MANIFEST_FILE))?;
        sync_dir(&self.dir)?;
        inner.manifest.stats.fsyncs += 2;
        Ok(())
    }

    fn put_segment(&self, op: u32, node: Option<usize>, nodes: usize, rows: Vec<Row>) {
        let started = clock::now();
        let image = codec::build_segment(op, node, &rows, self.compress);
        let (header, _) = codec::parse_segment(&image).expect("freshly built segment is valid");
        let file = segment_file_name(op, node);
        let logical_copies = if node.is_some() { 1 } else { nodes as u64 };
        let row_count = rows.len() as u64;
        let raw_bytes = encoded_rows_len(&rows);
        let shared = Arc::new(rows);

        // Commit the segment file *before* taking the lock: the slot
        // only becomes visible to readers once its manifest entry lands
        // below, and the engine writes each (op, node) slot from a
        // single worker, so the payload write + 2 fsyncs need no
        // serialization against other slots.
        let physical = self.commit_file(&file, &image);

        let mut inner = self.inner.lock();
        // Evict whatever previously covered these slots. Segment file
        // names are deterministic per slot, so the unlink must stay
        // atomic with the manifest mutation that forgets the entry — a
        // racing re-put of the same slot could otherwise lose the file
        // it just committed.
        inner.manifest.segments.retain(|e| {
            let replaced = node.map_or(e.op == op, |n| e.covers(op, n));
            if replaced && e.file != file {
                // ftpde-allow(FT211: unlinking a replaced slot must be atomic with forgetting its manifest entry — slot file names are deterministic)
                let _ = fs::remove_file(self.dir.join(&e.file));
            }
            !replaced
        });
        inner.manifest.segments.push(ManifestEntry {
            op,
            node,
            nodes,
            file,
            rows: row_count,
            payload_bytes: header.payload_len,
            crc32: header.crc32,
            compressed: header.flags & codec::FLAG_COMPRESSED != 0,
        });
        match node {
            Some(n) => {
                inner.cache.insert((op, n), shared);
            }
            None => {
                for n in 0..nodes {
                    inner.cache.insert((op, n), Arc::clone(&shared));
                }
            }
        }
        let elapsed = clock::elapsed(started).as_secs_f64();
        let stats = &mut inner.manifest.stats;
        stats.fsyncs += 2; // commit_file's segment write + rename pair
        stats.logical_rows_written += row_count * logical_copies;
        stats.logical_bytes_written += raw_bytes * logical_copies;
        stats.physical_rows_written += row_count;
        stats.physical_bytes_written += physical;
        stats.segments_committed += 1;
        stats.write_seconds += elapsed;
        // ftpde-allow(FT211: the manifest rewrite is the commit point — it must serialize with the mutation it persists)
        self.write_manifest(&mut inner)
            .unwrap_or_else(|e| panic!("store: failed to commit manifest: {e}"));
        drop(inner);
        record_fsyncs(2); // write_manifest's pair, reported unlocked
        record_put(physical, elapsed);
    }

    /// Demotes a corrupt segment: drop the entry, delete the file, record
    /// the corruption, persist the shrunken manifest. Takes the `inner`
    /// lock itself — callers must not hold it (the caller observed the
    /// corruption with no lock held, so the entry is re-validated here
    /// before acting on it).
    fn demote(&self, entry: &ManifestEntry, reason: String) {
        let mut inner = self.inner.lock();
        // A concurrent put may have replaced the slot (and its file)
        // while the failed read ran; demoting the snapshot would then
        // delete the successor's data.
        if !inner.manifest.segments.iter().any(|e| e == entry) {
            return;
        }
        // ftpde-allow(FT211: unlinking a demoted slot must be atomic with forgetting its manifest entry — slot file names are deterministic)
        let _ = fs::remove_file(self.dir.join(&entry.file));
        inner.manifest.segments.retain(|e| e.file != entry.file);
        inner.manifest.stats.corrupt_segments += 1;
        inner.corruptions.push(CorruptSegment { op: entry.op, node: entry.node, reason });
        // ftpde-allow(FT211: the manifest rewrite is the commit point — it must serialize with the mutation it persists)
        let synced = self.write_manifest(&mut inner).is_ok();
        drop(inner);
        record_corrupt_segments(1);
        if synced {
            record_fsyncs(2);
        }
    }
}

impl Drop for DiskBackend {
    fn drop(&mut self) {
        if self.remove_on_drop {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

impl StoreBackend for DiskBackend {
    fn put(&self, op: u32, node: usize, rows: Vec<Row>) {
        self.put_segment(op, Some(node), 1, rows);
    }

    fn put_replicated(&self, op: u32, rows: Vec<Row>, nodes: usize) {
        self.put_segment(op, None, nodes, rows);
    }

    fn get(&self, op: u32, node: usize) -> Option<Arc<Vec<Row>>> {
        let started = clock::now();
        let mut inner = self.inner.lock();
        if let Some(rows) = inner.cache.get(&(op, node)) {
            let rows = Arc::clone(rows);
            let bytes = encoded_rows_len(&rows);
            let elapsed = clock::elapsed(started).as_secs_f64();
            inner.manifest.stats.rows_read += rows.len() as u64;
            inner.manifest.stats.bytes_read += bytes;
            inner.manifest.stats.read_seconds += elapsed;
            drop(inner);
            record_get(bytes, elapsed);
            return Some(rows);
        }
        let entry = inner.manifest.segments.iter().find(|e| e.covers(op, node))?.clone();
        drop(inner);
        // Read and decode the segment with no lock held: committed
        // files are immutable, and the cache insert below re-validates
        // the entry against the manifest before publishing the rows.
        match read_entry(&self.dir, &entry) {
            Ok(rows) => {
                let shared = Arc::new(rows);
                let mut inner = self.inner.lock();
                // Only cache if the entry is still current — a
                // concurrent put/clear may have replaced the slot while
                // the read ran, and its rows must not be shadowed by
                // this (now stale, but consistent-at-read-start) copy.
                if inner.manifest.segments.iter().any(|e| e == &entry) {
                    match entry.node {
                        Some(n) => {
                            inner.cache.insert((op, n), Arc::clone(&shared));
                        }
                        None => {
                            for n in 0..entry.nodes {
                                inner.cache.insert((op, n), Arc::clone(&shared));
                            }
                        }
                    }
                }
                let elapsed = clock::elapsed(started).as_secs_f64();
                let stats = &mut inner.manifest.stats;
                stats.rows_read += shared.len() as u64;
                stats.bytes_read += entry.payload_bytes;
                stats.read_seconds += elapsed;
                drop(inner);
                record_get(entry.payload_bytes, elapsed);
                Some(shared)
            }
            Err(reason) => {
                self.demote(&entry, reason);
                None
            }
        }
    }

    fn contains(&self, op: u32, node: usize) -> bool {
        let inner = self.inner.lock();
        inner.cache.contains_key(&(op, node))
            || inner.manifest.segments.iter().any(|e| e.covers(op, node))
    }

    fn clear(&self) {
        let mut inner = self.inner.lock();
        for entry in std::mem::take(&mut inner.manifest.segments) {
            // ftpde-allow(FT211: unlinking cleared slots must be atomic with emptying the manifest — slot file names are deterministic)
            let _ = fs::remove_file(self.dir.join(&entry.file));
        }
        inner.cache.clear();
        // Lifetime stats survive (and are re-persisted) — a coarse query
        // restart must keep the write volume it already cost.
        // ftpde-allow(FT211: the manifest rewrite is the commit point — it must serialize with the mutation it persists)
        let synced = self.write_manifest(&mut inner).is_ok();
        drop(inner);
        if synced {
            record_fsyncs(2);
        }
    }

    fn len(&self) -> usize {
        let inner = self.inner.lock();
        let mut slots: Vec<(u32, usize)> = inner.cache.keys().copied().collect();
        for e in &inner.manifest.segments {
            match e.node {
                Some(n) => slots.push((e.op, n)),
                None => slots.extend((0..e.nodes).map(|n| (e.op, n))),
            }
        }
        slots.sort_unstable();
        slots.dedup();
        slots.len()
    }

    fn stats(&self) -> StoreStats {
        self.inner.lock().manifest.stats
    }

    fn drain_corruptions(&self) -> Vec<CorruptSegment> {
        std::mem::take(&mut self.inner.lock().corruptions)
    }
}

/// Deterministic segment file name for a slot.
fn segment_file_name(op: u32, node: Option<usize>) -> String {
    match node {
        Some(n) => format!("seg-{op}-{n}.seg"),
        None => format!("seg-{op}-rep.seg"),
    }
}

/// Fsyncs a directory so a completed rename survives power loss.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Reads and fully decodes a committed segment, cross-checking the file
/// against its manifest entry. Returns a corruption reason on failure.
fn read_entry(dir: &Path, entry: &ManifestEntry) -> Result<Vec<Row>, String> {
    let bytes = read_file(dir, &entry.file)?;
    let (header, payload) = codec::parse_segment(&bytes).map_err(|e| e.to_string())?;
    check_entry_matches(entry, &header)?;
    codec::decode_segment_rows(&header, payload).map_err(|e| e.to_string())
}

/// CRC-verifies a committed segment without decoding rows (open-time and
/// `verify` CLI path).
fn verify_entry(dir: &Path, entry: &ManifestEntry) -> Result<(), String> {
    let bytes = read_file(dir, &entry.file)?;
    let (header, _) = codec::parse_segment(&bytes).map_err(|e| e.to_string())?;
    check_entry_matches(entry, &header)
}

fn read_file(dir: &Path, name: &str) -> Result<Vec<u8>, String> {
    let mut bytes = Vec::new();
    File::open(dir.join(name))
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("unreadable: {e}"))?;
    Ok(bytes)
}

fn check_entry_matches(entry: &ManifestEntry, header: &codec::SegmentHeader) -> Result<(), String> {
    if header.op != entry.op || header.node != entry.node {
        return Err(format!(
            "segment identity mismatch: file is op {} node {:?}, manifest says op {} node {:?}",
            header.op, header.node, entry.op, entry.node
        ));
    }
    if header.rows != entry.rows || header.crc32 != entry.crc32 {
        return Err("segment content disagrees with manifest".to_string());
    }
    Ok(())
}

// --- offline inspection (CLI) --------------------------------------------

/// One segment's status in a [`StoreReport`] (see [`inspect`] / [`verify`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentReport {
    /// Producing operator id.
    pub op: u32,
    /// Partition index; `None` for replicated.
    pub node: Option<usize>,
    /// Replica fan-out.
    pub nodes: usize,
    /// Segment file name.
    pub file: String,
    /// Row count per the manifest.
    pub rows: u64,
    /// Stored payload bytes.
    pub payload_bytes: u64,
    /// Stored payload CRC-32.
    pub crc32: u32,
    /// Whether the payload is compressed.
    pub compressed: bool,
    /// `"ok"`, or the corruption reason.
    pub status: String,
}

/// What `ftpde store --inspect/--verify` reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreReport {
    /// The inspected directory.
    pub dir: String,
    /// Lifetime stats recorded in the manifest.
    pub stats: StoreStats,
    /// Per-segment details.
    pub segments: Vec<SegmentReport>,
    /// Stray files (`.tmp` leftovers, uncommitted segments).
    pub orphans: Vec<String>,
    /// Number of segments whose status is not `"ok"`.
    pub corrupt: u64,
}

impl StoreReport {
    /// Whether every committed segment verified clean.
    pub fn is_clean(&self) -> bool {
        self.corrupt == 0
    }

    /// Renders the report as a CLI summary table.
    pub fn to_summary(&self) -> Summary {
        let mut s = Summary::new();
        s.banner(format!("store {}", self.dir));
        let rows: Vec<Vec<String>> = self
            .segments
            .iter()
            .map(|e| {
                vec![
                    e.op.to_string(),
                    e.node.map_or_else(|| format!("rep x{}", e.nodes), |n| n.to_string()),
                    e.rows.to_string(),
                    e.payload_bytes.to_string(),
                    format!("{:08x}", e.crc32),
                    if e.compressed { "lz" } else { "raw" }.to_string(),
                    e.status.clone(),
                ]
            })
            .collect();
        s.table(&["op", "node", "rows", "bytes", "crc32", "enc", "status"], &rows);
        if !self.orphans.is_empty() {
            s.kv("orphan files", self.orphans.join(", "));
        }
        s.kv("corrupt segments", self.corrupt);
        for line in self.stats.to_summary().render().lines() {
            s.line(line.to_string());
        }
        s
    }
}

fn load_manifest(dir: &Path) -> std::io::Result<Manifest> {
    let text = fs::read_to_string(dir.join(MANIFEST_FILE))?;
    serde_json::from_str(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn list_orphans(dir: &Path, manifest: &Manifest) -> std::io::Result<Vec<String>> {
    let mut orphans = Vec::new();
    for dirent in fs::read_dir(dir)? {
        let name = dirent?.file_name().to_string_lossy().into_owned();
        if name == MANIFEST_FILE {
            continue;
        }
        let committed = manifest.segments.iter().any(|e| e.file == name);
        if !committed {
            orphans.push(name);
        }
    }
    orphans.sort();
    Ok(orphans)
}

fn report(dir: &Path, check: bool) -> std::io::Result<StoreReport> {
    let manifest = load_manifest(dir)?;
    let mut corrupt = 0u64;
    let segments = manifest
        .segments
        .iter()
        .map(|e| {
            let status = if check {
                match verify_entry(dir, e) {
                    Ok(()) => "ok".to_string(),
                    Err(reason) => {
                        corrupt += 1;
                        reason
                    }
                }
            } else {
                "ok".to_string()
            };
            SegmentReport {
                op: e.op,
                node: e.node,
                nodes: e.nodes,
                file: e.file.clone(),
                rows: e.rows,
                payload_bytes: e.payload_bytes,
                crc32: e.crc32,
                compressed: e.compressed,
                status,
            }
        })
        .collect();
    Ok(StoreReport {
        dir: dir.display().to_string(),
        stats: manifest.stats,
        segments,
        orphans: list_orphans(dir, &manifest)?,
        corrupt,
    })
}

/// Reads a store directory's manifest without touching segment payloads.
///
/// # Errors
/// I/O failure or an unreadable manifest.
pub fn inspect(dir: impl AsRef<Path>) -> std::io::Result<StoreReport> {
    report(dir.as_ref(), false)
}

/// Re-checksums every committed segment in a store directory. Segments
/// that fail get their corruption reason in
/// [`SegmentReport::status`] and are counted in [`StoreReport::corrupt`].
///
/// # Errors
/// I/O failure or an unreadable manifest — per-segment corruption is
/// reported in the result, not as an error.
pub fn verify(dir: impl AsRef<Path>) -> std::io::Result<StoreReport> {
    report(dir.as_ref(), true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{int_row, row, Value};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ftpde-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn bits(rows: &[Row]) -> Vec<Vec<u64>> {
        rows.iter()
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        Value::Int(i) => *i as u64,
                        Value::Float(f) => f.to_bits(),
                    })
                    .collect()
            })
            .collect()
    }

    fn sample_rows() -> Vec<Row> {
        vec![int_row(&[1, 2, 3]), row([Value::Float(0.5), Value::Float(-0.0)]), int_row(&[9])]
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn put_get_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let store = DiskBackend::open(&dir).unwrap();
            store.put(3, 1, sample_rows());
            store.put_replicated(7, vec![int_row(&[42])], 3);
            assert_eq!(bits(&store.get(3, 1).unwrap()), bits(&sample_rows()));
        }
        // Brand-new process simulation: fresh instance, cold cache.
        let store = DiskBackend::open(&dir).unwrap();
        assert!(store.drain_corruptions().is_empty());
        assert!(store.contains(3, 1));
        assert!(!store.contains(3, 0));
        assert_eq!(bits(&store.get(3, 1).unwrap()), bits(&sample_rows()));
        for node in 0..3 {
            assert_eq!(store.get(7, node).unwrap()[0][0], Value::Int(42));
        }
        let stats = store.stats();
        assert!(stats.fsyncs >= 4, "commit protocol fsyncs file+dir+manifest+dir");
        assert!(stats.write_bytes_per_s().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The reopen path must publish its cold-start cost to the global
    /// registry: `store.reopen_seconds` observations and a
    /// `store.segments_scanned` count covering every committed segment
    /// the open verified.
    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn reopen_records_cold_start_metrics() {
        let dir = tmp_dir("reopen-metrics");
        {
            let store = DiskBackend::open(&dir).unwrap();
            store.put(1, 0, sample_rows());
            store.put(2, 0, sample_rows());
        }
        let g = ftpde_obs::global();
        let scanned_before = g.snapshot().counter("store.segments_scanned");
        let reopens_before = g.snapshot().histogram("store.reopen_seconds").map_or(0, |h| h.count);
        let _store = DiskBackend::open(&dir).unwrap();
        let snap = g.snapshot();
        // Lower bounds: sibling tests reopening stores in parallel also
        // bump the global counters.
        assert!(
            snap.counter("store.segments_scanned") - scanned_before >= 2,
            "both committed segments verified on reopen"
        );
        let h = snap.histogram("store.reopen_seconds").expect("reopen timing recorded");
        assert!(h.count - reopens_before >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn flipped_byte_is_demoted_not_fatal() {
        let dir = tmp_dir("flip");
        {
            let store = DiskBackend::open(&dir).unwrap();
            store.put(1, 0, sample_rows());
            store.put(2, 0, sample_rows());
        }
        // Flip one payload byte of op 1's segment.
        let path = dir.join(segment_file_name(1, Some(0)));
        let mut bytes = fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let store = DiskBackend::open(&dir).unwrap();
        let corruptions = store.drain_corruptions();
        assert_eq!(corruptions.len(), 1);
        assert_eq!(corruptions[0].op, 1);
        assert!(corruptions[0].reason.contains("checksum"));
        assert!(!store.contains(1, 0), "corrupt segment reads as absent");
        assert!(store.contains(2, 0), "healthy sibling survives");
        assert!(store.get(1, 0).is_none());
        assert_eq!(store.stats().corrupt_segments, 1);
        // The demotion is durable: a further reopen is already clean.
        drop(store);
        let store = DiskBackend::open(&dir).unwrap();
        assert!(store.drain_corruptions().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn truncation_and_tmp_garbage_are_swept() {
        let dir = tmp_dir("torn");
        {
            let store = DiskBackend::open(&dir).unwrap();
            store.put(5, 0, sample_rows());
        }
        // Torn write: truncate the committed file mid-payload, and leave
        // a stray .tmp plus an uncommitted .seg around.
        let path = dir.join(segment_file_name(5, Some(0)));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        fs::write(dir.join("seg-9-0.seg.tmp"), b"partial").unwrap();
        fs::write(dir.join("seg-8-0.seg"), b"uncommitted").unwrap();

        let store = DiskBackend::open(&dir).unwrap();
        assert_eq!(store.drain_corruptions().len(), 1);
        assert!(!store.contains(5, 0));
        assert!(!dir.join("seg-9-0.seg.tmp").exists());
        assert!(!dir.join("seg-8-0.seg").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn corrupt_manifest_resets_to_empty() {
        let dir = tmp_dir("manifest");
        {
            let store = DiskBackend::open(&dir).unwrap();
            store.put(1, 0, sample_rows());
        }
        fs::write(dir.join(MANIFEST_FILE), b"{ not json").unwrap();
        let store = DiskBackend::open(&dir).unwrap();
        let corruptions = store.drain_corruptions();
        assert_eq!(corruptions.len(), 1);
        assert!(corruptions[0].reason.contains("manifest"));
        assert!(store.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn replace_and_clear_keep_directory_tidy() {
        let dir = tmp_dir("tidy");
        let store = DiskBackend::open(&dir).unwrap();
        store.put(1, 0, sample_rows());
        store.put(1, 0, vec![int_row(&[99])]); // overwrite same slot
        assert_eq!(store.get(1, 0).unwrap().len(), 1);
        store.put_replicated(1, vec![int_row(&[7])], 2); // replicated evicts per-node
        assert_eq!(store.get(1, 0).unwrap()[0][0], Value::Int(7));
        store.clear();
        assert!(store.is_empty());
        let stats = store.stats();
        assert!(stats.logical_rows_written >= 3, "lifetime stats survive clear");
        // Only the manifest remains on disk.
        let files: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|d| d.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files, vec![MANIFEST_FILE.to_string()]);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn ephemeral_store_removes_its_directory() {
        let dir;
        {
            let store = DiskBackend::ephemeral().unwrap();
            dir = store.dir().to_path_buf();
            store.put(1, 0, sample_rows());
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn compression_toggle_round_trips() {
        let dir = tmp_dir("compress");
        let rows: Vec<Row> = (0..256).map(|_| int_row(&[1, 1, 1, 1])).collect();
        {
            let store = DiskBackend::open(&dir).unwrap().with_compression(true);
            store.put(1, 0, rows.clone());
            let stats = store.stats();
            assert!(
                stats.physical_bytes_written < stats.logical_bytes_written,
                "compressed physical bytes must undercut raw logical bytes"
            );
        }
        // Readable by a store with compression off: format-driven decode.
        let store = DiskBackend::open(&dir).unwrap().with_compression(false);
        assert_eq!(bits(&store.get(1, 0).unwrap()), bits(&rows));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn inspect_and_verify_reports() {
        let dir = tmp_dir("report");
        {
            let store = DiskBackend::open(&dir).unwrap();
            store.put(1, 0, sample_rows());
            store.put(2, 1, sample_rows());
        }
        let clean = verify(&dir).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.segments.len(), 2);
        assert!(clean.orphans.is_empty());
        assert!(clean.to_summary().render().contains("crc32"));

        // Inspect does not checksum; verify does.
        let path = dir.join(segment_file_name(2, Some(1)));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(inspect(&dir).unwrap().is_clean());
        let dirty = verify(&dir).unwrap();
        assert!(!dirty.is_clean());
        assert_eq!(dirty.corrupt, 1);
        let bad = dirty.segments.iter().find(|s| s.op == 2).unwrap();
        assert!(bad.status.contains("checksum"));

        // Serde round-trip for the CLI's --format json.
        let json = serde_json::to_string(&dirty).unwrap();
        let back: StoreReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dirty);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn verify_flags_orphans() {
        let dir = tmp_dir("orphan");
        {
            let store = DiskBackend::open(&dir).unwrap();
            store.put(1, 0, sample_rows());
        }
        fs::write(dir.join("stray.tmp"), b"x").unwrap();
        let report = verify(&dir).unwrap();
        assert_eq!(report.orphans, vec!["stray.tmp".to_string()]);
        assert!(report.is_clean(), "orphans are garbage, not corruption");
        fs::remove_dir_all(&dir).unwrap();
    }
}
