//! Runtime values and rows of the execution engine.
//!
//! These types live in the *store* crate (not the engine) because the
//! durable checkpoint backends own their on-media encoding: a [`Row`] is
//! the unit the engine materializes, and [`crate::codec`] defines the
//! bit-exact byte format it round-trips through. The engine re-exports
//! this module unchanged.

use std::cmp::Ordering;

/// A scalar value. The simplified TPC-H schema only needs 64-bit integers
/// (keys, dates, enums, prices in cents) and doubles (derived averages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
}

impl Value {
    /// The value as an `i64`.
    ///
    /// # Panics
    /// Panics on a float value — engine plans are statically typed by
    /// construction, so a mismatch is a plan bug.
    #[inline]
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => panic!("expected Int, found Float({v})"),
        }
    }

    /// The value as an `f64` (integers widen losslessly for the magnitudes
    /// the generator produces).
    #[inline]
    pub fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
        }
    }

    /// Total order across numeric values (comparing by numeric value;
    /// NaN sorts last and is never produced by the generator).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            _ => self.as_float().total_cmp(&other.as_float()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

/// A row: a boxed slice of values (fixed arity per operator output).
pub type Row = Box<[Value]>;

/// Builds a row from anything convertible to values.
pub fn row<const N: usize>(vals: [Value; N]) -> Row {
    vals.to_vec().into_boxed_slice()
}

/// Builds a row of integers (the common case).
pub fn int_row(vals: &[i64]) -> Row {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::Int(7).as_float(), 7.0);
        assert_eq!(Value::Float(1.5).as_float(), 1.5);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn float_as_int_panics() {
        let _ = Value::Float(1.0).as_int();
    }

    #[test]
    fn ordering_across_types() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Int(3)), Ordering::Less);
        assert_eq!(Value::Float(2.5).total_cmp(&Value::Int(2)), Ordering::Greater);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
    }

    #[test]
    fn row_builders() {
        let r = int_row(&[1, 2, 3]);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2], Value::Int(3));
        let r2 = row([Value::Int(1), Value::Float(0.5)]);
        assert_eq!(r2.len(), 2);
    }
}
