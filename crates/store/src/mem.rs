//! The in-memory backend: today's engine behavior, extracted.
//!
//! A partitioned map from `(operator, node)` to shared row vectors. Rows
//! are behind `Arc` so replicating a partition to all nodes (the gather
//! pattern) stores one physical copy — which is exactly the distinction
//! the [`crate::StoreStats`] logical/physical split records. Nothing here
//! survives the process; this backend exists for fast tests and as the
//! semantic baseline the disk backend must be bit-identical to.

use std::collections::HashMap;

use crate::codec::encoded_rows_len;
use crate::stats::{record_get, record_put, StoreStats};
use crate::sync::clock;
use crate::sync::plain::Arc;
use crate::sync::Mutex;
use crate::value::Row;
use crate::{CorruptSegment, StoreBackend};

#[derive(Debug, Default)]
struct MemInner {
    segments: HashMap<(u32, usize), Arc<Vec<Row>>>,
    stats: StoreStats,
}

/// Volatile checkpoint storage keyed by `(operator id, node index)`.
#[derive(Debug, Default)]
pub struct MemBackend {
    inner: Mutex<MemInner>,
}

impl MemBackend {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StoreBackend for MemBackend {
    fn put(&self, op: u32, node: usize, rows: Vec<Row>) {
        let started = clock::now();
        let bytes = encoded_rows_len(&rows);
        let n = rows.len() as u64;
        let mut inner = self.inner.lock();
        inner.segments.insert((op, node), Arc::new(rows));
        let elapsed = clock::elapsed(started).as_secs_f64();
        inner.stats.logical_rows_written += n;
        inner.stats.physical_rows_written += n;
        inner.stats.logical_bytes_written += bytes;
        inner.stats.physical_bytes_written += bytes;
        inner.stats.segments_committed += 1;
        inner.stats.write_seconds += elapsed;
        drop(inner);
        record_put(bytes, elapsed);
    }

    fn put_replicated(&self, op: u32, rows: Vec<Row>, nodes: usize) {
        let started = clock::now();
        let bytes = encoded_rows_len(&rows);
        let n = rows.len() as u64;
        let shared = Arc::new(rows);
        let mut inner = self.inner.lock();
        for node in 0..nodes {
            inner.segments.insert((op, node), Arc::clone(&shared));
        }
        // One physical copy made visible on `nodes` targets.
        let elapsed = clock::elapsed(started).as_secs_f64();
        inner.stats.logical_rows_written += n * nodes as u64;
        inner.stats.logical_bytes_written += bytes * nodes as u64;
        inner.stats.physical_rows_written += n;
        inner.stats.physical_bytes_written += bytes;
        inner.stats.segments_committed += 1;
        inner.stats.write_seconds += elapsed;
        drop(inner);
        record_put(bytes, elapsed);
    }

    fn get(&self, op: u32, node: usize) -> Option<Arc<Vec<Row>>> {
        let started = clock::now();
        let mut inner = self.inner.lock();
        let hit = inner.segments.get(&(op, node)).cloned();
        if let Some(rows) = &hit {
            let bytes = encoded_rows_len(rows);
            let elapsed = clock::elapsed(started).as_secs_f64();
            inner.stats.rows_read += rows.len() as u64;
            inner.stats.bytes_read += bytes;
            inner.stats.read_seconds += elapsed;
            drop(inner);
            record_get(bytes, elapsed);
        }
        hit
    }

    fn contains(&self, op: u32, node: usize) -> bool {
        self.inner.lock().segments.contains_key(&(op, node))
    }

    fn clear(&self) {
        // Stats survive a clear: they account the backend's lifetime, and
        // a coarse query restart must not erase the write volume it cost.
        self.inner.lock().segments.clear();
    }

    fn len(&self) -> usize {
        self.inner.lock().segments.len()
    }

    fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    fn drain_corruptions(&self) -> Vec<CorruptSegment> {
        // Memory cannot tear or bit-rot; there is never anything to drain.
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int_row;

    #[test]
    fn put_and_get_round_trip() {
        let store = MemBackend::new();
        assert!(store.is_empty());
        store.put(1, 0, vec![int_row(&[1, 2]), int_row(&[3, 4])]);
        assert!(store.contains(1, 0));
        assert!(!store.contains(1, 1));
        assert_eq!(store.get(1, 0).unwrap().len(), 2);
        assert!(store.get(2, 0).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn replication_is_one_physical_copy() {
        let store = MemBackend::new();
        store.put_replicated(9, vec![int_row(&[5]), int_row(&[6])], 4);
        for node in 0..4 {
            assert_eq!(store.get(9, node).unwrap().len(), 2);
        }
        let stats = store.stats();
        // The satellite fix: 2 rows × 4 nodes logical, 2 physical.
        assert_eq!(stats.logical_rows_written, 8);
        assert_eq!(stats.physical_rows_written, 2);
        assert_eq!(stats.logical_bytes_written, 4 * stats.physical_bytes_written);
        assert!(stats.physical_bytes_written > 0);
        assert_eq!(stats.replication_amplification(), Some(4.0));
        assert_eq!(stats.fsyncs, 0);
    }

    #[test]
    fn clear_keeps_lifetime_stats() {
        let store = MemBackend::new();
        store.put(1, 0, vec![int_row(&[1])]);
        store.clear();
        assert!(store.is_empty());
        assert!(!store.contains(1, 0));
        assert_eq!(store.stats().logical_rows_written, 1);
    }

    /// Always-on instrumentation: backend traffic lands in the global
    /// registry even with no recorder attached. Delta-based because the
    /// registry is shared across concurrently running tests.
    #[cfg(not(loom))]
    #[test]
    fn traffic_lands_in_the_global_registry() {
        let before = ftpde_obs::global().snapshot();
        let store = MemBackend::new();
        store.put(77, 0, vec![int_row(&[1, 2, 3])]);
        let _ = store.get(77, 0);
        let after = ftpde_obs::global().snapshot();
        let bytes = store.stats().physical_bytes_written;
        assert!(after.counter("store.puts_total") > before.counter("store.puts_total"));
        assert!(after.counter("store.gets_total") > before.counter("store.gets_total"));
        assert!(
            after.counter("store.put_bytes_total")
                >= before.counter("store.put_bytes_total") + bytes
        );
        assert!(
            after.counter("store.get_bytes_total")
                >= before.counter("store.get_bytes_total") + bytes
        );
        let puts_before = before.histogram("store.put_seconds").map_or(0, |h| h.count);
        assert!(after.histogram("store.put_seconds").unwrap().count > puts_before);
    }

    #[test]
    fn reads_are_accounted() {
        let store = MemBackend::new();
        store.put(1, 0, vec![int_row(&[1, 2, 3])]);
        let _ = store.get(1, 0);
        let _ = store.get(1, 1); // miss: not accounted
        let stats = store.stats();
        assert_eq!(stats.rows_read, 1);
        assert_eq!(stats.bytes_read, stats.physical_bytes_written);
    }
}
