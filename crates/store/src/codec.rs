//! The on-media byte format of a checkpoint segment.
//!
//! One segment holds one partition of one operator's materialized output:
//!
//! ```text
//! [ 0.. 8)  magic  "FTPDSEG1"
//! [ 8..12)  format version, u32 LE (currently 1)
//! [12..16)  flags, u32 LE (bit 0: payload is LZ-compressed)
//! [16..20)  producing operator id, u32 LE
//! [20..28)  partition index, u64 LE (u64::MAX = replicated segment)
//! [28..36)  row count, u64 LE
//! [36..44)  stored payload length, u64 LE
//! [44..48)  CRC-32 (IEEE) of the stored payload, u32 LE
//! [48.. )   payload
//! ```
//!
//! The payload is a sequence of length-prefixed row records (bincode
//! style): a `u32` LE value count, then per value a 1-byte tag (`0` =
//! `Int`, `1` = `Float`) and 8 LE bytes. Floats are encoded via
//! `f64::to_bits`, so the round-trip is bit-exact — including negative
//! zero and any NaN payload — which is what makes "results are
//! bit-identical across backends" a checkable contract.
//!
//! Everything here is pure (no I/O): the disk backend, the verifier and
//! the CLI all share these functions, and they run under Miri.

use crate::value::{Row, Value};

/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 8] = *b"FTPDSEG1";
/// Current segment format version.
pub const VERSION: u32 = 1;
/// Size of the fixed segment header in bytes.
pub const HEADER_LEN: usize = 48;
/// Flag bit 0: the payload is compressed with [`crate::compress`].
pub const FLAG_COMPRESSED: u32 = 1;
/// The `node` encoding of a replicated (broadcast) segment.
const NODE_REPLICATED: u64 = u64::MAX;

/// Why a segment (or its payload) failed to decode. Every variant is a
/// *corruption signal*: callers treat the segment as not materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the fixed header (a torn write).
    Truncated,
    /// The first 8 bytes are not the segment magic.
    BadMagic,
    /// A format version this build does not understand.
    BadVersion(u32),
    /// An unknown flag bit is set.
    BadFlags(u32),
    /// The stored payload length disagrees with the file size.
    LengthMismatch { declared: u64, actual: u64 },
    /// The payload's CRC-32 does not match the header.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// A row record ran off the end of the payload.
    TruncatedRow,
    /// An unknown value tag byte.
    BadTag(u8),
    /// Decoded row count disagrees with the header.
    RowCountMismatch { declared: u64, actual: u64 },
    /// The compressed payload is malformed.
    BadCompression(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "segment shorter than its header"),
            CodecError::BadMagic => write!(f, "bad segment magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported segment version {v}"),
            CodecError::BadFlags(fl) => write!(f, "unknown segment flags {fl:#x}"),
            CodecError::LengthMismatch { declared, actual } => {
                write!(f, "payload length mismatch: header says {declared}, file has {actual}")
            }
            CodecError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: header {expected:#010x}, payload {actual:#010x}")
            }
            CodecError::TruncatedRow => write!(f, "row record truncated"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t}"),
            CodecError::RowCountMismatch { declared, actual } => {
                write!(f, "row count mismatch: header says {declared}, payload holds {actual}")
            }
            CodecError::BadCompression(why) => write!(f, "malformed compressed payload: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

// --- CRC-32 (IEEE 802.3, the one zlib/gzip use) --------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- row payload ---------------------------------------------------------

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;

/// Exact encoded size of `rows` as an uncompressed payload, without
/// materializing the bytes (the in-memory backend's accounting uses this
/// so both backends report comparable byte volumes).
pub fn encoded_rows_len(rows: &[Row]) -> u64 {
    rows.iter().map(|r| 4 + 9 * r.len() as u64).sum()
}

/// Encodes `rows` as the uncompressed payload byte sequence.
pub fn encode_rows(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_rows_len(rows) as usize);
    for r in rows {
        out.extend_from_slice(&(r.len() as u32).to_le_bytes());
        for v in r {
            match v {
                Value::Int(i) => {
                    out.push(TAG_INT);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(x) => {
                    out.push(TAG_FLOAT);
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
        }
    }
    out
}

/// Decodes an uncompressed payload back into rows.
///
/// # Errors
/// Any structural violation ([`CodecError::TruncatedRow`] /
/// [`CodecError::BadTag`]) — the caller treats the segment as corrupt.
pub fn decode_rows(bytes: &[u8]) -> Result<Vec<Row>, CodecError> {
    let mut rows = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let arity_bytes: [u8; 4] =
            bytes.get(at..at + 4).ok_or(CodecError::TruncatedRow)?.try_into().unwrap();
        let arity = u32::from_le_bytes(arity_bytes) as usize;
        at += 4;
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tag = *bytes.get(at).ok_or(CodecError::TruncatedRow)?;
            let payload: [u8; 8] =
                bytes.get(at + 1..at + 9).ok_or(CodecError::TruncatedRow)?.try_into().unwrap();
            at += 9;
            row.push(match tag {
                TAG_INT => Value::Int(i64::from_le_bytes(payload)),
                TAG_FLOAT => Value::Float(f64::from_bits(u64::from_le_bytes(payload))),
                other => return Err(CodecError::BadTag(other)),
            });
        }
        rows.push(row.into_boxed_slice());
    }
    Ok(rows)
}

// --- segment assembly ----------------------------------------------------

/// The parsed fixed header of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Flag bits ([`FLAG_COMPRESSED`]).
    pub flags: u32,
    /// Producing operator id.
    pub op: u32,
    /// Partition index; `None` for a replicated segment.
    pub node: Option<usize>,
    /// Number of rows in the decoded payload.
    pub rows: u64,
    /// Stored (possibly compressed) payload length in bytes.
    pub payload_len: u64,
    /// CRC-32 of the stored payload.
    pub crc32: u32,
}

/// Builds a complete segment file image for `rows`. With `compress` the
/// payload is LZ-compressed *when that actually shrinks it* (stored
/// uncompressed otherwise, so pathological inputs never grow).
pub fn build_segment(op: u32, node: Option<usize>, rows: &[Row], compress: bool) -> Vec<u8> {
    let raw = encode_rows(rows);
    let (payload, flags) = if compress {
        match crate::compress::compress(&raw) {
            Some(c) if c.len() < raw.len() => (c, FLAG_COMPRESSED),
            _ => (raw, 0),
        }
    } else {
        (raw, 0)
    };
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&op.to_le_bytes());
    out.extend_from_slice(&node.map_or(NODE_REPLICATED, |n| n as u64).to_le_bytes());
    out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses and *verifies* a segment file image: magic, version, flags,
/// length and checksum. Returns the header and the verified payload
/// slice (still compressed if the flag is set).
///
/// # Errors
/// Every corruption class maps to a distinct [`CodecError`].
pub fn parse_segment(bytes: &[u8]) -> Result<(SegmentHeader, &[u8]), CodecError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let word32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let word64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    if bytes[..8] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = word32(8);
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let flags = word32(12);
    if flags & !FLAG_COMPRESSED != 0 {
        return Err(CodecError::BadFlags(flags));
    }
    let header = SegmentHeader {
        flags,
        op: word32(16),
        node: match word64(20) {
            NODE_REPLICATED => None,
            n => Some(n as usize),
        },
        rows: word64(28),
        payload_len: word64(36),
        crc32: word32(44),
    };
    let actual = (bytes.len() - HEADER_LEN) as u64;
    if header.payload_len != actual {
        return Err(CodecError::LengthMismatch { declared: header.payload_len, actual });
    }
    let payload = &bytes[HEADER_LEN..];
    let sum = crc32(payload);
    if sum != header.crc32 {
        return Err(CodecError::ChecksumMismatch { expected: header.crc32, actual: sum });
    }
    Ok((header, payload))
}

/// Decodes a verified payload into rows, decompressing when flagged and
/// cross-checking the header's row count.
///
/// # Errors
/// Structural payload corruption the checksum could not see (it can't —
/// the checksum covers the stored bytes, so this only fires on a
/// mis-built segment) or a row-count mismatch.
pub fn decode_segment_rows(header: &SegmentHeader, payload: &[u8]) -> Result<Vec<Row>, CodecError> {
    let raw;
    let bytes = if header.flags & FLAG_COMPRESSED != 0 {
        raw = crate::compress::decompress(payload).ok_or(CodecError::BadCompression("lz"))?;
        raw.as_slice()
    } else {
        payload
    };
    let rows = decode_rows(bytes)?;
    if rows.len() as u64 != header.rows {
        return Err(CodecError::RowCountMismatch {
            declared: header.rows,
            actual: rows.len() as u64,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{int_row, row};

    fn sample_rows() -> Vec<Row> {
        vec![
            int_row(&[1, -2, i64::MAX]),
            row([Value::Float(0.5), Value::Float(-0.0)]),
            row([Value::Float(f64::NAN), Value::Int(0)]),
            int_row(&[]),
        ]
    }

    /// Bitwise row equality — `PartialEq` on `Value` treats NaN != NaN and
    /// -0.0 == 0.0, which is exactly what "bit-identical" must not do.
    fn bits(rows: &[Row]) -> Vec<Vec<u64>> {
        rows.iter()
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        Value::Int(i) => *i as u64,
                        Value::Float(f) => f.to_bits(),
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn rows_round_trip_bit_exactly() {
        let rows = sample_rows();
        let bytes = encode_rows(&rows);
        assert_eq!(bytes.len() as u64, encoded_rows_len(&rows));
        let back = decode_rows(&bytes).unwrap();
        assert_eq!(bits(&back), bits(&rows));
    }

    #[test]
    fn segment_round_trips_with_and_without_compression() {
        let rows = sample_rows();
        for compress in [false, true] {
            let seg = build_segment(7, Some(2), &rows, compress);
            let (header, payload) = parse_segment(&seg).unwrap();
            assert_eq!(header.op, 7);
            assert_eq!(header.node, Some(2));
            assert_eq!(header.rows, rows.len() as u64);
            let back = decode_segment_rows(&header, payload).unwrap();
            assert_eq!(bits(&back), bits(&rows));
        }
        // Replicated segments encode node = MAX.
        let seg = build_segment(3, None, &rows, false);
        assert_eq!(parse_segment(&seg).unwrap().0.node, None);
    }

    #[test]
    fn compression_helps_on_repetitive_data() {
        let rows: Vec<Row> = (0..512).map(|_| int_row(&[42, 42, 42, 42])).collect();
        let plain = build_segment(0, Some(0), &rows, false);
        let packed = build_segment(0, Some(0), &rows, true);
        assert!(
            packed.len() < plain.len() / 2,
            "repetitive rows must compress well: {} vs {}",
            packed.len(),
            plain.len()
        );
        let (h, p) = parse_segment(&packed).unwrap();
        assert_eq!(h.flags & FLAG_COMPRESSED, FLAG_COMPRESSED);
        assert_eq!(bits(&decode_segment_rows(&h, p).unwrap()), bits(&rows));
    }

    #[test]
    fn every_corruption_class_is_detected() {
        let rows = sample_rows();
        let seg = build_segment(1, Some(0), &rows, false);

        // Truncated below the header.
        assert_eq!(parse_segment(&seg[..HEADER_LEN - 1]), Err(CodecError::Truncated));
        // Bad magic.
        let mut bad = seg.clone();
        bad[0] ^= 0xFF;
        assert_eq!(parse_segment(&bad), Err(CodecError::BadMagic));
        // Unsupported version.
        let mut bad = seg.clone();
        bad[8] = 99;
        assert_eq!(parse_segment(&bad), Err(CodecError::BadVersion(99)));
        // Unknown flags.
        let mut bad = seg.clone();
        bad[12] = 0x80;
        assert_eq!(parse_segment(&bad), Err(CodecError::BadFlags(0x80)));
        // Torn payload (length mismatch).
        let torn = &seg[..seg.len() - 3];
        assert!(matches!(parse_segment(torn), Err(CodecError::LengthMismatch { .. })));
        // Flipped payload byte (checksum).
        let mut bad = seg.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert!(matches!(parse_segment(&bad), Err(CodecError::ChecksumMismatch { .. })));
    }

    #[test]
    fn payload_decoder_rejects_structural_garbage() {
        assert_eq!(decode_rows(&[1, 0]), Err(CodecError::TruncatedRow));
        // Arity 1 but no value bytes.
        assert_eq!(decode_rows(&1u32.to_le_bytes()), Err(CodecError::TruncatedRow));
        // Unknown tag.
        let mut bytes = 1u32.to_le_bytes().to_vec();
        bytes.push(7);
        bytes.extend_from_slice(&[0; 8]);
        assert_eq!(decode_rows(&bytes), Err(CodecError::BadTag(7)));
        // Row-count mismatch against the header.
        let seg = build_segment(1, Some(0), &sample_rows(), false);
        let (mut h, p) = parse_segment(&seg).unwrap();
        h.rows += 1;
        assert!(matches!(decode_segment_rows(&h, p), Err(CodecError::RowCountMismatch { .. })));
    }

    #[test]
    fn errors_render_their_diagnosis() {
        let e = CodecError::ChecksumMismatch { expected: 1, actual: 2 };
        assert!(e.to_string().contains("checksum mismatch"));
        assert!(CodecError::Truncated.to_string().contains("header"));
    }
}
