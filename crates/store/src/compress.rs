//! A small LZ77-family byte compressor for segment payloads.
//!
//! The workspace vendors no compression crate, so the disk backend ships
//! its own LZ4-style scheme: greedy longest-match against a hash table of
//! 4-byte windows, emitted as a token stream of literal runs and
//! back-references. The stream grammar is one control byte per token:
//!
//! ```text
//! 0xxxxxxx                  literal run of (x + 1) bytes, which follow
//! 1xxxxxxx  oo oo           match of length (x + 4) at LE offset o >= 1
//! ```
//!
//! Matches are 4..=131 bytes long and reach back up to 65 535 bytes —
//! plenty for row payloads, where redundancy is dominated by repeated
//! column prefixes within a segment. The decoder is always compiled (a
//! store written with the `compress` feature on must remain readable with
//! it off); the feature only flips the *write-side* default. The encoder
//! never commits a stream larger than its input: [`crate::codec`] falls
//! back to storing the payload raw when compression does not pay.

/// Minimum back-reference length (shorter matches cost more than literals).
const MIN_MATCH: usize = 4;
/// Maximum back-reference length encodable in one token.
const MAX_MATCH: usize = 127 + MIN_MATCH;
/// Maximum literal run encodable in one token.
const MAX_LITERAL_RUN: usize = 128;
/// Maximum back-reference distance (2-byte offset, 0 is reserved).
const MAX_OFFSET: usize = u16::MAX as usize;
/// Hash-chain buckets (power of two).
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let word = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (word.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`, or returns `None` when the compressed form would
/// not be strictly smaller (the caller then stores the input raw).
pub fn compress(input: &[u8]) -> Option<Vec<u8>> {
    if input.len() < MIN_MATCH {
        return None;
    }
    let mut out = Vec::with_capacity(input.len() / 2);
    // head[h] = most recent position whose 4-byte window hashed to h.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut at = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut run = from;
        while run < to {
            let n = (to - run).min(MAX_LITERAL_RUN);
            out.push((n - 1) as u8);
            out.extend_from_slice(&input[run..run + n]);
            run += n;
        }
    };

    while at + MIN_MATCH <= input.len() {
        let h = hash4(&input[at..]);
        let candidate = head[h];
        head[h] = at;

        let mut match_len = 0;
        if candidate != usize::MAX && at - candidate <= MAX_OFFSET {
            let limit = (input.len() - at).min(MAX_MATCH);
            while match_len < limit && input[candidate + match_len] == input[at + match_len] {
                match_len += 1;
            }
        }

        if match_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, at);
            out.push(0x80 | (match_len - MIN_MATCH) as u8);
            out.extend_from_slice(&((at - candidate) as u16).to_le_bytes());
            // Seed the hash table across the matched span so later
            // repetitions of this region are also found.
            let end = at + match_len;
            at += 1;
            while at < end && at + MIN_MATCH <= input.len() {
                head[hash4(&input[at..])] = at;
                at += 1;
            }
            at = end;
            literal_start = at;
        } else {
            at += 1;
        }
        if out.len() + (at - literal_start) >= input.len() {
            return None;
        }
    }
    flush_literals(&mut out, literal_start, input.len());
    (out.len() < input.len()).then_some(out)
}

/// Decompresses a token stream produced by [`compress`]. Returns `None`
/// on any malformed input (truncated token, zero or out-of-range offset) —
/// the store surfaces that as segment corruption.
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len() * 3);
    let mut at = 0usize;
    while at < input.len() {
        let control = input[at];
        at += 1;
        if control & 0x80 == 0 {
            let n = control as usize + 1;
            let run = input.get(at..at + n)?;
            out.extend_from_slice(run);
            at += n;
        } else {
            let len = (control & 0x7F) as usize + MIN_MATCH;
            let off_bytes = input.get(at..at + 2)?;
            let offset = u16::from_le_bytes([off_bytes[0], off_bytes[1]]) as usize;
            at += 2;
            if offset == 0 || offset > out.len() {
                return None;
            }
            // Matches may overlap their own output (offset < len), so
            // copy byte-wise from the back-reference.
            let start = out.len() - offset;
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn round_trip(data: &[u8]) {
        // Incompressible (`None`) is a valid outcome, never a wrong one.
        if let Some(packed) = compress(data) {
            assert!(packed.len() < data.len());
            assert_eq!(decompress(&packed).as_deref(), Some(data));
        }
    }

    #[test]
    fn round_trips_structured_inputs() {
        round_trip(b"");
        round_trip(b"abc");
        round_trip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        round_trip(&b"rowrowrowyourboat".repeat(40));
        let mut mixed = Vec::new();
        for i in 0u32..600 {
            mixed.extend_from_slice(&(i % 7).to_le_bytes());
        }
        round_trip(&mixed);
    }

    #[test]
    fn repetitive_input_compresses_hard() {
        let data = vec![0xABu8; 4096];
        let packed = compress(&data).expect("constant bytes must compress");
        assert!(packed.len() < data.len() / 20, "got {} bytes", packed.len());
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn incompressible_input_is_refused_not_grown() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..2048).map(|_| rng.gen::<u8>()).collect();
        // Random bytes have no 4-byte repeats to speak of; the encoder
        // must decline rather than emit a larger stream.
        assert!(compress(&data).is_none());
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        // "abcabcabc..." forces offset < length copies.
        let data = b"abc".repeat(100);
        let packed = compress(&data).unwrap();
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        // Literal run that claims more bytes than remain.
        assert_eq!(decompress(&[0x05, b'x']), None);
        // Match token with a truncated offset.
        assert_eq!(decompress(&[0x80, 0x01]), None);
        // Zero offset.
        assert_eq!(decompress(&[0x00, b'a', 0x80, 0x00, 0x00]), None);
        // Offset reaching before the start of the output.
        assert_eq!(decompress(&[0x00, b'a', 0x80, 0x09, 0x00]), None);
    }

    #[test]
    fn random_round_trips() {
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..200 {
            let len = rng.gen_range(0usize..1500);
            // Skewed alphabet so matches actually occur.
            let alphabet = 1 + (case % 17) as u8;
            let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=alphabet)).collect();
            round_trip(&data);
        }
    }
}
