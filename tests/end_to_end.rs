//! Cross-crate integration tests: the full pipeline from join-order
//! enumeration through the cost-based fault-tolerance search down to the
//! discrete-event simulator and the real execution engine.

use ftpde::cluster::prelude::*;
use ftpde::core::prelude::*;
use ftpde::optimizer::prelude::*;
use ftpde::sim::prelude::*;
use ftpde::tpch::prelude::*;

/// Optimizer → core → simulator: the plan chosen by `findBestFTPlan` over
/// the top-k join orders is at least as good in *simulation* as naive
/// extremes on the same traces.
#[test]
fn optimizer_core_sim_pipeline() {
    let cm = CostModel::xdb_calibrated();
    let graph = q5_join_graph(100.0);
    let trees = k_best_plans(&graph, 10);
    assert_eq!(trees.len(), 10);
    let plans: Vec<_> =
        trees.iter().map(|t| tree_to_plan(&graph, t, &cm, Some(q5_agg_spec()))).collect();

    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let params = Scheme::cost_params(&cluster);
    let (best, stats) = find_best_ft_plan(&plans, &params, &PruneOptions::default()).unwrap();
    assert_eq!(stats.plans_considered, 10);

    // Simulate the chosen fault-tolerant plan against the extremes of the
    // *same* plan on the same traces.
    let opts = SimOptions::default();
    let horizon = suggested_horizon(&best.plan, &cluster, &opts);
    let traces = TraceSet::generate(&cluster, horizon, 10, 77);
    let mean = |config: &MatConfig| -> f64 {
        let runs: Vec<f64> = traces
            .iter()
            .map(|t| {
                simulate(&best.plan, config, Recovery::FineGrained, &cluster, t, &opts).completion
            })
            .collect();
        runs.iter().sum::<f64>() / runs.len() as f64
    };
    let chosen = mean(&best.config);
    let none = mean(&MatConfig::none(&best.plan));
    let all = mean(&MatConfig::all(&best.plan));
    assert!(chosen <= none * 1.10, "chosen {chosen:.0}s vs no-mat {none:.0}s");
    assert!(chosen <= all * 1.10, "chosen {chosen:.0}s vs all-mat {all:.0}s");
}

/// The cost model's estimate for the chosen plan is within the accuracy
/// band the paper reports (optimistic by at most ~30–40%, Figure 12a).
#[test]
fn estimate_tracks_simulation() {
    let cm = CostModel::xdb_calibrated();
    let plan = Query::Q5.plan(100.0, &cm);
    for (seed, m) in [(1u64, mtbf::WEEK), (2, mtbf::DAY), (3, mtbf::HOUR)] {
        let cluster = ClusterConfig::paper_cluster(m);
        let params = Scheme::cost_params(&cluster);
        let config = Scheme::CostBased.select_config(&plan, &cluster).unwrap();
        let estimated = estimate_ft_plan(&plan, &config, &params).dominant_cost;
        let opts = SimOptions::default();
        let horizon = suggested_horizon(&plan, &cluster, &opts);
        let traces = TraceSet::generate(&cluster, horizon, 10, seed);
        let actual: f64 = traces
            .iter()
            .map(|t| simulate(&plan, &config, Recovery::FineGrained, &cluster, t, &opts).completion)
            .sum::<f64>()
            / 10.0;
        let err = (actual - estimated) / actual;
        assert!(
            (-0.15..0.45).contains(&err),
            "MTBF {m}: estimated {estimated:.0}s vs actual {actual:.0}s (err {:.0}%)",
            err * 100.0
        );
    }
}

/// Every TPC-H evaluation query survives the full search with all pruning
/// rules and yields a plan no worse than the exhaustive optimum by more
/// than the pairwise-rule slack.
#[test]
fn all_queries_search_cleanly() {
    let cm = CostModel::xdb_calibrated();
    for q in Query::ALL {
        let plan = q.plan(10.0, &cm);
        for m in [mtbf::WEEK, mtbf::HOUR] {
            let cluster = ClusterConfig::paper_cluster(m);
            let params = Scheme::cost_params(&cluster);
            let (pruned, _) =
                find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::default())
                    .unwrap();
            let (exhaustive, _) =
                find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::none())
                    .unwrap();
            let (p, e) = (pruned.estimate.dominant_cost, exhaustive.estimate.dominant_cost);
            assert!(p >= e - 1e-9, "{q}: pruning cannot beat exhaustive");
            assert!(p <= e * 1.10, "{q} @ MTBF {m}: pruned {p:.1} vs exhaustive {e:.1}");
        }
    }
}

/// The mid-plan aggregation of Q1C is selected as a checkpoint on
/// unreliable clusters — the paper's flagship qualitative claim (§5.2).
#[test]
fn q1c_mid_plan_aggregation_is_chosen_as_checkpoint() {
    let cm = CostModel::xdb_calibrated();
    let plan = Query::Q1C.plan(100.0, &cm);
    let baseline = ftpde::tpch::costing::baseline_runtime(&plan);
    // Low MTBF: 1.1x the baseline runtime (the Figure 8a setting).
    let cluster = ClusterConfig::paper_cluster(1.1 * baseline);
    let config = Scheme::CostBased.select_config(&plan, &cluster).unwrap();
    let avg = plan.find_by_name("Γ avg").unwrap();
    assert!(config.materializes(avg), "the cheap mid-plan aggregate must be checkpointed");
    // The expensive join output is not worth its materialization cost.
    let join = plan.find_by_name("⋈ price > avg").unwrap();
    assert!(plan.op(join).mat_cost > 20.0 * plan.op(avg).mat_cost);
}

/// Engine ↔ core consistency: the engine executes exactly the collapsed
/// stages the cost model reasons about, for every materialization
/// configuration of Q3.
#[test]
fn engine_stage_structure_matches_collapsed_plan() {
    use ftpde::engine::prelude::*;
    let plan = q3_engine_plan();
    let dag = plan.to_plan_dag();
    let db = Database::generate(0.0005, 11);
    let catalog = load_catalog(&db, 3);

    let reference = run_query(
        &plan,
        &MatConfig::none(&dag),
        &catalog,
        &FailureInjector::none(),
        &RunOptions::default(),
    );

    for config in MatConfig::enumerate(&dag) {
        let pc = CollapsedPlan::collapse(&dag, &config, 1.0);
        // Kill the first attempt of every stage on node 1.
        let injector = FailureInjector::with(pc.iter().map(|(_, c)| Injection {
            stage: c.root.0,
            node: 1,
            attempt: 0,
        }));
        let report = run_query(&plan, &config, &catalog, &injector, &RunOptions::default());
        assert_eq!(report.results, reference.results, "config {:?}", config.materialized_ops());
        assert_eq!(
            report.node_retries,
            pc.len() as u64,
            "one retry per stage (config {:?})",
            config.materialized_ops()
        );
    }
}

/// Whole-stack smoke test of the four schemes' qualitative ordering at
/// the paper's Figure 11 setting.
#[test]
fn figure11_ordering_holds_end_to_end() {
    let cm = CostModel::xdb_calibrated();
    let plan = Query::Q5.plan(100.0, &cm);
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let opts = SimOptions::default();
    let horizon = suggested_horizon(&plan, &cluster, &opts);
    let traces = TraceSet::generate(&cluster, horizon, 10, 4242);
    let runs = run_all_schemes(&plan, &cluster, &traces, &opts).unwrap();
    let oh: Vec<f64> =
        runs.iter().map(|r| r.mean_overhead_pct().unwrap_or(f64::INFINITY)).collect();
    let (all_mat, lineage, restart, cost_based) = (oh[0], oh[1], oh[2], oh[3]);
    assert!(cost_based < restart, "cost-based beats restart");
    assert!(cost_based <= all_mat * 1.1, "cost-based ≤ all-mat");
    assert!(cost_based <= lineage * 1.1, "cost-based ≤ lineage");
    assert!(restart > lineage, "coarse restart is the worst fine vs coarse comparison");
}
