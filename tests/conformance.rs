//! End-to-end conformance: real traced runs — the simulator under all
//! four fault-tolerance schemes and the engine under failure-injected
//! fine-grained and coarse-restart recovery — replay cleanly through the
//! trace-conformance checker (`FT101`…`FT108`), and deliberate damage is
//! flagged with the right code. This is the programmatic face of the
//! `ftpde check` CI gate.

use ftpde::analysis::diag::Code;
use ftpde::analysis::prelude::*;
use ftpde::cluster::prelude::*;
use ftpde::core::prelude::*;
use ftpde::engine::prelude::*;
use ftpde::obs::MemoryRecorder;
use ftpde::sim::prelude::*;
use ftpde::tpch::datagen::Database;
use ftpde::tpch::prelude::*;

#[test]
fn simulated_schemes_produce_conformant_traces() {
    let cm = CostModel::xdb_calibrated();
    let cluster = ClusterConfig::new(10, 400.0, 1.0);
    let opts = SimOptions::default();
    for query in [Query::Q1, Query::Q3, Query::Q5] {
        let plan = query.plan(1.0, &cm);
        let horizon = suggested_horizon(&plan, &cluster, &opts);
        let trace = FailureTrace::generate(&cluster, horizon, 2026);
        for scheme in Scheme::ALL {
            let config = scheme.select_config(&plan, &cluster).expect("valid plan");
            let rec = MemoryRecorder::new();
            simulate_traced(&plan, &config, scheme.recovery(), &cluster, &trace, &opts, None, &rec);
            let sp = StagePlan::sim_ids(&plan, &config, opts.pipe_const);
            let subject = format!("{query}/{scheme}");
            let report = check_trace(&subject, &rec.events(), Some(&sp), &CheckOptions::default());
            assert!(report.is_clean(), "{subject} trace not conformant:\n{}", report.render());
        }
    }
}

fn small_catalog(nodes: usize) -> Catalog {
    load_catalog(&Database::generate(0.0005, 7), nodes)
}

#[test]
fn engine_fine_grained_failure_injected_trace_is_conformant() {
    let nodes = 3;
    let plan = q3_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::all(&dag);
    let sp = StagePlan::engine_ids(&dag, &config, 1.0);
    let stage_roots: Vec<u32> =
        sp.stages().iter().map(|s| u32::try_from(s.id).expect("root op ids are u32")).collect();
    // Kill half the first attempts: plenty of redeploys, plus rewinds if
    // any materialized segment is lost mid-flight.
    let injector = FailureInjector::random_first_attempts(&stage_roots, nodes, 0.5, 11);
    let rec = MemoryRecorder::new();
    run_query_traced(
        &plan,
        &config,
        &small_catalog(nodes),
        &injector,
        &RunOptions::default(),
        None,
        &rec,
    );
    let report = check_trace("engine-fine", &rec.events(), Some(&sp), &CheckOptions::default());
    assert!(report.is_clean(), "fine-grained trace not conformant:\n{}", report.render());
}

#[test]
fn engine_coarse_restart_trace_is_conformant() {
    let nodes = 3;
    let plan = q1_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::none(&dag);
    let sp = StagePlan::engine_ids(&dag, &config, 1.0);
    let first_stage = u32::try_from(sp.stages()[0].id).expect("root op ids are u32");
    // One injected failure on the first query attempt: the coordinator
    // cancels the sibling workers, restarts the query, and the second
    // attempt runs clean.
    let injector = FailureInjector::with([Injection { stage: first_stage, node: 0, attempt: 0 }]);
    let opts = RunOptions {
        recovery: EngineRecovery::CoarseRestart,
        max_restarts: 10,
        ..Default::default()
    };
    let rec = MemoryRecorder::new();
    let r = run_query_traced(&plan, &config, &small_catalog(nodes), &injector, &opts, None, &rec);
    assert!(r.query_restarts >= 1, "the injection must force a restart");
    let report = check_trace("engine-coarse", &rec.events(), Some(&sp), &CheckOptions::default());
    assert!(report.is_clean(), "coarse-restart trace not conformant:\n{}", report.render());
}

#[test]
fn damaged_engine_trace_is_rejected_with_the_right_code() {
    let nodes = 3;
    let plan = q3_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::all(&dag);
    let sp = StagePlan::engine_ids(&dag, &config, 1.0);
    let rec = MemoryRecorder::new();
    run_query_traced(
        &plan,
        &config,
        &small_catalog(nodes),
        &FailureInjector::none(),
        &RunOptions::default(),
        None,
        &rec,
    );
    let mut events = rec.events();
    // Erase one stage entirely — the execution span and its worker
    // attempts — so the completed query no longer covers the plan.
    let stage_arg = |e: &ftpde::obs::Event| {
        e.args.iter().find_map(|(k, v)| match (k.as_str(), v) {
            ("stage", ftpde::obs::ArgValue::U64(n)) => Some(*n),
            _ => None,
        })
    };
    let victim = events
        .iter()
        .find(|e| e.name.starts_with("stage ") && e.tid == 0)
        .and_then(&stage_arg)
        .expect("trace has stage spans");
    events.retain(|e| stage_arg(e) != Some(victim) || e.name == "materialize");
    let report = check_trace("damaged", &events, Some(&sp), &CheckOptions::default());
    assert!(
        report.diagnostics.iter().any(|d| d.code == Code::FT103),
        "span deletion must be FT103:\n{}",
        report.render()
    );
}
