//! Crash-recovery integration tests for the durable checkpoint store:
//! a query checkpointed to a [`DiskBackend`] must resume bit-identically
//! after a genuine "process restart" (all handles dropped, directory
//! reopened by a fresh instance), and corrupted or torn segments must be
//! detected by checksum and healed by re-execution — never by a panic.
#![cfg(not(miri))]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use ftpde::core::collapse::CollapsedPlan;
use ftpde::core::config::MatConfig;
use ftpde::engine::prelude::*;
use ftpde::obs::MemoryRecorder;
use ftpde::tpch::datagen::Database;

const SF: f64 = 0.001;
const SEED: u64 = 42;

/// A unique scratch directory per call, so tests (and proptest cases)
/// never share store state.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ftpde-store-recovery-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn catalog(nodes: usize) -> Catalog {
    load_catalog(&Database::generate(SF, SEED), nodes)
}

fn stage_count(plan: &EnginePlan, config: &MatConfig) -> usize {
    CollapsedPlan::collapse(&plan.to_plan_dag(), config, 1.0).len()
}

/// Kills the first attempt of every non-sink stage on every node: any
/// stage that actually *executes* (instead of resuming from the store)
/// trips it.
fn poison_non_sinks(plan: &EnginePlan, nodes: usize) -> FailureInjector {
    let sinks = plan.sinks();
    let poison: Vec<Injection> = plan
        .op_ids()
        .filter(|id| !sinks.contains(id))
        .flat_map(|id| (0..nodes).map(move |n| Injection { stage: id.0, node: n, attempt: 0 }))
        .collect();
    FailureInjector::with(poison)
}

/// The tentpole end-to-end: Q5 all-mat checkpointed to disk under injected
/// node failures, then resumed by a *brand-new* backend instance after
/// every handle is gone. The resumed run must skip every non-sink stage
/// and reproduce the first run's rows bit-for-bit — which must in turn
/// match an in-memory run of the same query.
#[test]
fn disk_store_survives_a_process_restart() {
    let plan = q5_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::all(&dag);
    let nodes = 4;
    let catalog = catalog(nodes);
    let dir = scratch("restart");

    // Ground truth on the in-memory backend.
    let mem = MemBackend::new();
    let mem_run = run_query_resumable(
        &plan,
        &config,
        &catalog,
        &FailureInjector::none(),
        &RunOptions::default(),
        &mem,
    );

    // First submission on disk, with mid-query node failures for spice.
    let stage_roots: Vec<u32> = plan.op_ids().map(|id| id.0).collect();
    let injector = FailureInjector::random_first_attempts(&stage_roots, nodes, 0.4, 7);
    let first = {
        let disk = DiskBackend::open(&dir).unwrap();
        run_query_resumable(&plan, &config, &catalog, &injector, &RunOptions::default(), &disk)
        // `disk` dropped here: the only warm state left is the directory.
    };
    assert_eq!(first.results, mem_run.results, "disk and mem backends must agree");
    assert_eq!(first.stages_skipped, 0);

    // "Process restart": a fresh backend recovers everything from the
    // manifest, and the resumed query executes nothing but the sink.
    let reopened = DiskBackend::open(&dir).unwrap();
    assert!(!reopened.is_empty(), "manifest must repopulate the store");
    let resumed = run_query_resumable(
        &plan,
        &config,
        &catalog,
        &poison_non_sinks(&plan, nodes),
        &RunOptions::default(),
        &reopened,
    );
    assert_eq!(resumed.stages_skipped as usize, stage_count(&plan, &config) - 1);
    assert_eq!(resumed.segments_corrupt, 0);
    assert_eq!(resumed.results, first.results, "resume must be bit-identical");
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn segment (truncated file, as a crash mid-write would leave had
/// the rename not been atomic) is detected at reopen, surfaced as a
/// `segment_corrupt` event, and healed by re-executing only its producer —
/// the rest of the plan still resumes from the store.
#[test]
fn torn_segment_is_detected_and_reexecuted() {
    let plan = q3_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::all(&dag);
    let nodes = 3;
    let catalog = catalog(nodes);
    let dir = scratch("torn");

    let first = {
        let disk = DiskBackend::open(&dir).unwrap();
        run_query_resumable(
            &plan,
            &config,
            &catalog,
            &FailureInjector::none(),
            &RunOptions::default(),
            &disk,
        )
    };

    // Tear one non-sink segment in half.
    let sink = plan.sinks()[0];
    let report = ftpde::store::inspect(&dir).unwrap();
    let victim = report
        .segments
        .iter()
        .find(|s| s.op != sink.0)
        .expect("a non-sink segment is materialized");
    let path = dir.join(&victim.file);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let reopened = DiskBackend::open(&dir).unwrap();
    let rec = MemoryRecorder::new();
    let resumed = run_query_resumable_traced(
        &plan,
        &config,
        &catalog,
        &FailureInjector::none(),
        &RunOptions::default(),
        &reopened,
        None,
        &rec,
    );
    assert_eq!(resumed.results, first.results);
    assert!(resumed.segments_corrupt >= 1, "the torn segment must be reported");
    // Exactly the victim stage and the sink re-execute.
    assert_eq!(resumed.stages_skipped as usize, stage_count(&plan, &config) - 2);
    let events = rec.events();
    let corrupt: Vec<_> = events.iter().filter(|e| e.name == "segment_corrupt").collect();
    assert!(!corrupt.is_empty(), "a segment_corrupt instant must be traced");
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Produces the CI artifact: a clean `ftpde store --verify`-equivalent
/// JSON report of a real checkpointed query at `target/store/verify.json`,
/// then proves the same report flags a flipped payload byte.
#[test]
fn verify_report_artifact_and_corruption_flagging() {
    let plan = q3_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::all(&dag);
    let catalog = catalog(3);
    let dir = scratch("verify");
    {
        let disk = DiskBackend::open(&dir).unwrap();
        run_query_resumable(
            &plan,
            &config,
            &catalog,
            &FailureInjector::none(),
            &RunOptions::default(),
            &disk,
        );
    }

    let clean = ftpde::store::verify(&dir).unwrap();
    assert!(clean.is_clean(), "fresh store must verify clean: {clean:?}");
    assert!(!clean.segments.is_empty());
    std::fs::create_dir_all("target/store").unwrap();
    std::fs::write("target/store/verify.json", serde_json::to_string_pretty(&clean).unwrap())
        .unwrap();

    // Flip one payload byte: verify must flag exactly that segment.
    let victim = &clean.segments[0];
    let path = dir.join(&victim.file);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let flagged = ftpde::store::verify(&dir).unwrap();
    assert!(!flagged.is_clean());
    assert_eq!(flagged.corrupt, 1);
    let bad = flagged.segments.iter().find(|s| s.file == victim.file).unwrap();
    assert_ne!(bad.status, "ok");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary single-segment damage — a flipped byte or a truncation at
    /// any offset — never panics, always surfaces a `segment_corrupt`
    /// event, and recovery reproduces the original rows bit-for-bit.
    #[test]
    fn random_segment_damage_recovers_bit_identically(
        which_segment in any::<u32>(),
        offset_frac in 0.0f64..1.0,
        flip in any::<bool>(),
    ) {
        let plan = q3_engine_plan();
        let dag = plan.to_plan_dag();
        let config = MatConfig::all(&dag);
        let catalog = catalog(2);
        let dir = scratch("prop");

        let first = {
            let disk = DiskBackend::open(&dir).unwrap();
            run_query_resumable(
                &plan,
                &config,
                &catalog,
                &FailureInjector::none(),
                &RunOptions::default(),
                &disk,
            )
        };

        let report = ftpde::store::inspect(&dir).unwrap();
        let victim = &report.segments[which_segment as usize % report.segments.len()];
        let path = dir.join(&victim.file);
        let mut bytes = std::fs::read(&path).unwrap();
        // Both damage modes are guaranteed to invalidate the segment:
        // every byte is either a checked header field or CRC-covered
        // payload, and any truncation breaks the recorded payload length.
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        if flip {
            bytes[offset] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
        } else {
            std::fs::write(&path, &bytes[..offset]).unwrap();
        }

        let reopened = DiskBackend::open(&dir).unwrap();
        let rec = MemoryRecorder::new();
        let resumed = run_query_resumable_traced(
            &plan,
            &config,
            &catalog,
            &FailureInjector::none(),
            &RunOptions::default(),
            &reopened,
            None,
            &rec,
        );
        prop_assert_eq!(&resumed.results, &first.results);
        prop_assert!(resumed.segments_corrupt >= 1);
        prop_assert!(rec.events().iter().any(|e| e.name == "segment_corrupt"));
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
