//! End-to-end test of the `ftpde lint` CI gate: the built binary must
//! exit 0 with a clean report on every built-in plan, emit parseable JSON
//! diagnostics, and exit nonzero when fed a corrupted serialized plan.

use std::path::PathBuf;
use std::process::{Command, Output};

use ftpde::analysis::prelude::*;

fn ftpde(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ftpde")).args(args).output().expect("binary runs")
}

fn tmp_file(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ftpde_lint_cli_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn lint_all_is_clean_and_exits_zero() {
    let out = ftpde(&["lint", "--all", "--sf", "1"]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "stdout:\n{stdout}");
    // One report per built-in subject: figure2 + the five TPC-H queries.
    assert!(stdout.contains("figure2: clean"), "{stdout}");
    for q in ["Q1", "Q3", "Q5", "Q1C", "Q2C"] {
        assert!(stdout.contains(&format!("{q} @ SF 1: clean")), "{stdout}");
    }
    assert!(stdout.contains("total: 6 subject(s), 0 error(s)"), "{stdout}");
}

#[test]
fn lint_json_output_deserializes_into_a_report_set() {
    let out = ftpde(&["lint", "--query", "Q5", "--sf", "1", "--format", "json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let set: ReportSet = serde_json::from_str(stdout.trim()).unwrap();
    assert_eq!(set.reports.len(), 1);
    assert_eq!(set.reports[0].subject, "Q5 @ SF 1");
    assert!(set.is_clean());
}

#[test]
fn lint_rejects_a_corrupted_serialized_plan() {
    // The input table claims a backward edge 1 -> 0 (stored as a forward
    // edge on op 0) that the consumer table does not mirror: FT001.
    let path = tmp_file(
        "corrupted.json",
        r#"{
            "ops": [
                {"name": "a", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"},
                {"name": "b", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"}
            ],
            "inputs": [[1], []],
            "consumers": [[], []]
        }"#,
    );
    let out = ftpde(&["lint", "--plan", path.to_str().unwrap()]);
    assert!(!out.status.success(), "a corrupted plan must fail the lint gate");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("FT001"), "{stdout}");

    // The same corruption in JSON format still fails, and the diagnostics
    // artifact still parses.
    let out = ftpde(&["lint", "--plan", path.to_str().unwrap(), "--format", "json"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let set: ReportSet = serde_json::from_str(stdout.trim()).unwrap();
    assert!(!set.is_clean());
    assert!(set.reports[0].diagnostics.iter().any(|d| d.code == Code::FT001));
}

#[test]
fn lint_honours_cluster_flags_and_validates_them() {
    let out = ftpde(&["lint", "--query", "Q1", "--sf", "1", "--mtbf", "600", "--mttr", "5"]);
    assert!(out.status.success());
    let out = ftpde(&["lint", "--query", "Q1", "--mtbf", "-3"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("mtbf"), "{stderr}");
}

/// A scratch workspace with one seeded FT201/FT202 violation.
fn seeded_workspace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[package]\nname = \"seeded\"\n").unwrap();
    std::fs::write(
        dir.join("src/lib.rs"),
        "use std::sync::Mutex;\npub fn t() { let _ = std::time::Instant::now(); }\n",
    )
    .unwrap();
    dir
}

#[test]
fn lint_source_gates_on_a_seeded_violation() {
    let dir = seeded_workspace("ftpde_lint_source_seeded_text");
    let out = ftpde(&["lint", "--source", "--root", dir.to_str().unwrap()]);
    assert!(!out.status.success(), "a seeded FT201/FT202 must turn the gate red");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("FT201"), "{stdout}");
    assert!(stdout.contains("FT202"), "{stdout}");
    assert!(stdout.contains("src/lib.rs:1"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_source_json_artifact_parses_and_carries_locations() {
    let dir = seeded_workspace("ftpde_lint_source_seeded_json");
    let out = ftpde(&["lint", "--source", "--root", dir.to_str().unwrap(), "--format", "json"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let set: ReportSet = serde_json::from_str(stdout.trim()).unwrap();
    assert!(!set.is_clean());
    let d = &set.reports[0].diagnostics[0];
    assert_eq!(d.code, Code::FT201);
    assert_eq!(d.file.as_deref(), Some("src/lib.rs"));
    assert_eq!(d.line, Some(1));
    // Token-window findings have no column; the field is an explicit
    // null in the artifact, never absent.
    assert_eq!(d.column, None);
    assert!(stdout.contains("\"column\":null"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scratch workspace seeding the concurrency passes: blocking I/O
/// under two live guards (FT211) plus a nested acquisition for the
/// lock-order graph.
fn seeded_concurrency_workspace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[package]\nname = \"seeded\"\n").unwrap();
    std::fs::write(
        dir.join("src/lib.rs"),
        "pub struct S { inner: crate::sync::Mutex<u32>, log: crate::sync::Mutex<u32> }\n\
         impl S {\n\
             pub fn spill(&self) {\n\
                 let g = self.inner.lock();\n\
                 let h = self.log.lock();\n\
                 let _ = std::fs::write(\"spill.bin\", b\"x\");\n\
                 drop(h);\n\
                 drop(g);\n\
             }\n\
         }\n",
    )
    .unwrap();
    dir
}

#[test]
fn lint_source_json_locates_concurrency_findings_with_columns() {
    let dir = seeded_concurrency_workspace("ftpde_lint_source_seeded_ft211");
    let out = ftpde(&["lint", "--source", "--root", dir.to_str().unwrap(), "--format", "json"]);
    assert!(!out.status.success(), "a seeded FT211 must turn the gate red");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let set: ReportSet = serde_json::from_str(stdout.trim()).unwrap();
    let ft211: Vec<_> =
        set.reports.iter().flat_map(|r| &r.diagnostics).filter(|d| d.code == Code::FT211).collect();
    assert_eq!(ft211.len(), 1, "{stdout}");
    assert_eq!(ft211[0].line, Some(6));
    assert!(ft211[0].column.is_some(), "FT21x findings are column-located: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_source_sarif_artifact_carries_rules_and_locations() {
    let dir = seeded_concurrency_workspace("ftpde_lint_source_seeded_sarif");
    let out = ftpde(&["lint", "--source", "--root", dir.to_str().unwrap(), "--format", "sarif"]);
    assert!(!out.status.success(), "the gate still gates in sarif format");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"version\": \"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\": \"FT211\""), "{stdout}");
    assert!(stdout.contains("\"startLine\": 6"), "{stdout}");
    assert!(stdout.contains("\"startColumn\""), "{stdout}");
    assert!(stdout.contains("\"uri\": \"src/lib.rs\""), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_source_emits_the_lock_graph_artifact() {
    let dir = seeded_concurrency_workspace("ftpde_lint_source_seeded_lockgraph");
    let graph_dir = dir.join("lint-artifacts");
    let out = ftpde(&[
        "lint",
        "--source",
        "--root",
        dir.to_str().unwrap(),
        "--emit-lock-graph",
        graph_dir.to_str().unwrap(),
    ]);
    // The seeded FT211 still turns the gate red, but the artifacts land.
    assert!(!out.status.success());
    let dot = std::fs::read_to_string(graph_dir.join("lock-graph.dot")).expect("dot artifact");
    assert!(dot.contains("src/lib.rs::inner"), "{dot}");
    assert!(dot.contains("src/lib.rs::log"), "{dot}");
    assert!(dot.contains("->"), "{dot}");
    let json = std::fs::read_to_string(graph_dir.join("lock-graph.json")).expect("json artifact");
    let v: serde::Value = serde_json::from_str(&json).expect("artifact parses");
    assert_eq!(v.get("edges").and_then(serde::Value::as_array).map(<[_]>::len), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_source_on_this_workspace_is_clean() {
    // CARGO_MANIFEST_DIR of the root integration tests IS the workspace
    // root — the CLI face of the dogfooding gate.
    let out = ftpde(&["lint", "--source", "--root", env!("CARGO_MANIFEST_DIR")]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "workspace source lint not clean:\n{stdout}");
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn lint_source_rejects_a_rootless_directory() {
    let dir = std::env::temp_dir().join("ftpde_lint_source_no_cargo");
    std::fs::create_dir_all(&dir).unwrap();
    let _ = std::fs::remove_file(dir.join("Cargo.toml"));
    let out = ftpde(&["lint", "--source", "--root", dir.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("workspace root"), "{stderr}");
}

/// A real traced engine run (Q3, one injected node failure), exported
/// to JSONL — the input format `ftpde check` consumes.
fn traced_run_jsonl() -> String {
    use ftpde::core::config::MatConfig;
    use ftpde::engine::prelude::*;
    use ftpde::obs::{export, MemoryRecorder};
    use ftpde::tpch::datagen::Database;

    let plan = q3_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::all(&dag);
    let sink = plan.sinks()[0];
    let injector = FailureInjector::with([Injection { stage: sink.0, node: 1, attempt: 0 }]);
    let catalog = load_catalog(&Database::generate(0.001, 42), 4);
    let rec = MemoryRecorder::new();
    run_query_traced(&plan, &config, &catalog, &injector, &RunOptions::default(), None, &rec);
    export::to_jsonl(&rec.events())
}

/// Pipes `input` into `ftpde` via stdin and captures the output.
fn ftpde_stdin(args: &[&str], input: &str) -> Output {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_ftpde"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child.stdin.take().unwrap().write_all(input.as_bytes()).unwrap();
    child.wait_with_output().expect("binary runs")
}

#[test]
fn check_reads_a_trace_from_stdin() {
    let jsonl = traced_run_jsonl();

    // `--trace -` must reach the same verdict as the file path does.
    let out = ftpde_stdin(&["check", "--trace", "-"], &jsonl);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("<stdin>"), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");

    let path = tmp_file("stdin_equiv.jsonl", &jsonl);
    let from_file = ftpde(&["check", "--trace", path.to_str().unwrap()]);
    assert!(from_file.status.success());
    // Identical reports up to the subject name.
    let file_stdout = String::from_utf8(from_file.stdout).unwrap();
    assert_eq!(
        stdout.replace("<stdin>", "X"),
        file_stdout.replace(path.to_str().unwrap(), "X"),
        "stdin and file disagree"
    );
}

#[test]
fn check_stdin_with_plan_flags_still_verifies_stage_identity() {
    let jsonl = traced_run_jsonl();
    let out = ftpde_stdin(
        &["check", "--trace", "-", "--query", "Q3", "--config", "all", "--format", "json"],
        &jsonl,
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let set: ReportSet = serde_json::from_str(stdout.trim()).unwrap();
    assert!(set.is_clean(), "{stdout}");
}

#[test]
fn check_rejects_garbage_on_stdin() {
    let out = ftpde_stdin(&["check", "--trace", "-"], "this is not a JSONL event log\n");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("<stdin>"), "{stderr}");
}

#[test]
fn explain_prints_registry_text_for_every_code_family() {
    for (code, needle) in [("FT001", "structural"), ("FT105", "recovery"), ("FT201", "loom")] {
        let out = ftpde(&["explain", code]);
        assert!(out.status.success());
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.starts_with(&format!("{code} [")), "{stdout}");
        assert!(stdout.contains(needle), "{code}: {stdout}");
    }
    // Case-insensitive, like rustc --explain.
    let out = ftpde(&["explain", "ft202"]);
    assert!(out.status.success());

    let out = ftpde(&["explain", "FT999"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown code"), "{stderr}");

    let out = ftpde(&["explain"]);
    assert!(!out.status.success(), "explain requires a code argument");
}

#[test]
fn explain_list_prints_the_full_registry_table() {
    let out = ftpde(&["explain", "--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for code in Code::ALL {
        assert!(stdout.contains(code.as_str()), "missing {code} in:\n{stdout}");
    }
    // Severity-sorted: every error row precedes every lint row.
    let first_lint = stdout.find(" lint ").expect("registry has lint-severity codes");
    let last_error = stdout.rfind(" error ").expect("registry has error-severity codes");
    assert!(last_error < first_lint, "rows are not severity-sorted:\n{stdout}");
}
