//! End-to-end test of the `ftpde lint` CI gate: the built binary must
//! exit 0 with a clean report on every built-in plan, emit parseable JSON
//! diagnostics, and exit nonzero when fed a corrupted serialized plan.

use std::path::PathBuf;
use std::process::{Command, Output};

use ftpde::analysis::prelude::*;

fn ftpde(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ftpde")).args(args).output().expect("binary runs")
}

fn tmp_file(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ftpde_lint_cli_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn lint_all_is_clean_and_exits_zero() {
    let out = ftpde(&["lint", "--all", "--sf", "1"]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "stdout:\n{stdout}");
    // One report per built-in subject: figure2 + the five TPC-H queries.
    assert!(stdout.contains("figure2: clean"), "{stdout}");
    for q in ["Q1", "Q3", "Q5", "Q1C", "Q2C"] {
        assert!(stdout.contains(&format!("{q} @ SF 1: clean")), "{stdout}");
    }
    assert!(stdout.contains("total: 6 subject(s), 0 error(s)"), "{stdout}");
}

#[test]
fn lint_json_output_deserializes_into_a_report_set() {
    let out = ftpde(&["lint", "--query", "Q5", "--sf", "1", "--format", "json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let set: ReportSet = serde_json::from_str(stdout.trim()).unwrap();
    assert_eq!(set.reports.len(), 1);
    assert_eq!(set.reports[0].subject, "Q5 @ SF 1");
    assert!(set.is_clean());
}

#[test]
fn lint_rejects_a_corrupted_serialized_plan() {
    // The input table claims a backward edge 1 -> 0 (stored as a forward
    // edge on op 0) that the consumer table does not mirror: FT001.
    let path = tmp_file(
        "corrupted.json",
        r#"{
            "ops": [
                {"name": "a", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"},
                {"name": "b", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"}
            ],
            "inputs": [[1], []],
            "consumers": [[], []]
        }"#,
    );
    let out = ftpde(&["lint", "--plan", path.to_str().unwrap()]);
    assert!(!out.status.success(), "a corrupted plan must fail the lint gate");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("FT001"), "{stdout}");

    // The same corruption in JSON format still fails, and the diagnostics
    // artifact still parses.
    let out = ftpde(&["lint", "--plan", path.to_str().unwrap(), "--format", "json"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let set: ReportSet = serde_json::from_str(stdout.trim()).unwrap();
    assert!(!set.is_clean());
    assert!(set.reports[0].diagnostics.iter().any(|d| d.code == Code::FT001));
}

#[test]
fn lint_honours_cluster_flags_and_validates_them() {
    let out = ftpde(&["lint", "--query", "Q1", "--sf", "1", "--mtbf", "600", "--mttr", "5"]);
    assert!(out.status.success());
    let out = ftpde(&["lint", "--query", "Q1", "--mtbf", "-3"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("mtbf"), "{stderr}");
}
