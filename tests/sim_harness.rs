//! Tier-1 acceptance for the deterministic simulation harness:
//!
//! * a sweep of seeds produces **byte-identical** outcomes across
//!   invocations (the whole point of the harness);
//! * the `ftpde sim` CLI is byte-identical too, including its JSON
//!   artifact;
//! * a deliberately injected recovery bug (the store serving corrupt
//!   rows instead of demoting them) is caught by the FT302 result
//!   oracle and shrunk to a minimal schedule.

use std::process::{Command, Output};

use ftpde::analysis::prelude::Code;
use ftpde::simharness::prelude::*;
use ftpde::simharness::runner::run_case;

fn ftpde(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ftpde")).args(args).output().expect("binary runs")
}

#[test]
fn a_seed_sweep_is_byte_identical_across_invocations() {
    // ≥ 8 seeds, serialized outcome (workload, schedule, report,
    // summary — trace length, result hashes, fired faults) compared
    // byte for byte. CI's sim-smoke job widens the range to 64.
    for seed in 0..8u64 {
        let a = serde_json::to_string(&run_seed(seed)).unwrap();
        let b = serde_json::to_string(&run_seed(seed)).unwrap();
        assert_eq!(a, b, "seed {seed} is not deterministic");
    }
}

#[test]
fn the_sweep_of_the_first_eight_seeds_is_clean() {
    for seed in 0..8u64 {
        let outcome = run_seed(seed);
        assert!(!outcome.failing(), "seed {seed}:\n{}", outcome.report.render());
    }
}

#[test]
fn cli_sim_json_artifact_is_byte_identical_and_parses() {
    let run = || {
        let out = ftpde(&["sim", "--seeds", "0..4", "--format", "json"]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "CLI sweep is not byte-identical");
    let doc: serde::Value = serde_json::from_str(first.trim()).unwrap();
    let serde::Value::Object(doc) = doc else { panic!("not an object") };
    assert_eq!(
        doc.iter().find(|(k, _)| k == "schema").map(|(_, v)| v),
        Some(&serde::Value::Str("ftpde-sim-report".to_string()))
    );
}

#[test]
fn an_injected_recovery_bug_is_caught_and_shrunk_to_a_minimal_schedule() {
    // Sweep seeds until one's schedule damages a slot the query reads
    // back; under the seeded bug the store serves the damaged rows
    // instead of demoting them, and the FT302 result oracle must fire.
    let seed = (0..64u64)
        .find(|&seed| {
            let case = SimCase::derive(seed).with_bug(BugMode::ServeCorruptData);
            primary_code(&run_case(&case).report) == Some(Code::FT302)
        })
        .expect("no seed in 0..64 tripped FT302 under the seeded bug");

    let case = SimCase::derive(seed).with_bug(BugMode::ServeCorruptData);
    let shrunk = shrink_case(&case).expect("failing case must shrink");
    assert_eq!(shrunk.code, Code::FT302);
    assert!(
        shrunk.case.schedule.len() <= 10,
        "shrunk schedule still has {} events",
        shrunk.case.schedule.len()
    );
    // The minimal case is a standalone reproduction.
    let replay = run_case(&shrunk.case);
    assert_eq!(primary_code(&replay.report), Some(Code::FT302), "{}", replay.report.render());
}

#[test]
fn cli_sim_rejects_malformed_requests() {
    let out = ftpde(&["sim"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--seed"), "{stderr}");

    let out = ftpde(&["sim", "--seeds", "8..8"]);
    assert!(!out.status.success());

    let out = ftpde(&["sim", "--seed", "0", "--bug", "made-up"]);
    assert!(!out.status.success());
}
