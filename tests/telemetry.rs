//! End-to-end test of the live telemetry plane: a failure-injected Q3
//! run on a disk store hits a torn (corrupt) segment, the always-on
//! flight recorder dumps its ring to JSONL, the dump replays through the
//! trace-conformance checker without parse errors, and the HTTP
//! telemetry endpoints serve the aftermath — per-query progress on
//! `/queries`, dump counters on `/healthz`, the ring itself on
//! `/flight` and Prometheus text on `/metrics`.
//!
//! One test function on purpose: the flight recorder's dump directory
//! is process-global state, and the endpoints read process-global
//! registries, so the scenario runs as a single ordered story.
#![cfg(not(miri))]

use std::path::PathBuf;

use ftpde::analysis::prelude::*;
use ftpde::core::config::MatConfig;
use ftpde::engine::prelude::*;
use ftpde::obs;
use ftpde::tpch::datagen::Database;

const SF: f64 = 0.001;
const SEED: u64 = 42;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftpde-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn flight_dump_from_injected_corruption_replays_and_serves() {
    let store_dir = scratch("store");
    let flight_dir = scratch("flight");
    std::fs::create_dir_all(&flight_dir).unwrap();
    let flight = obs::flight::global();
    flight.set_dump_dir(Some(flight_dir.clone()));

    // A failure-injected Q3 run, fully materialized to disk. The flight
    // recorder rides along on every engine run — no recorder was asked
    // for, yet the ring fills.
    let plan = q3_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::all(&dag);
    let nodes = 3;
    let catalog = load_catalog(&Database::generate(SF, SEED), nodes);
    let stage_roots: Vec<u32> = plan.op_ids().map(|id| id.0).collect();
    let injector = FailureInjector::random_first_attempts(&stage_roots, nodes, 0.4, 7);
    let first = {
        let disk = DiskBackend::open(&store_dir).unwrap();
        run_query_resumable(&plan, &config, &catalog, &injector, &RunOptions::default(), &disk)
    };
    assert!(flight.total_recorded() > 0, "the flight ring must fill on any engine run");

    // Tear one non-sink segment in half — the crash-mid-write shape.
    let sink = plan.sinks()[0];
    let report = ftpde::store::inspect(&store_dir).unwrap();
    let victim = report
        .segments
        .iter()
        .find(|s| s.op != sink.0)
        .expect("a non-sink segment is materialized");
    let path = store_dir.join(&victim.file);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    // The resume detects the corruption, heals it, and — the tentpole —
    // the detection anomaly snapshots the ring to disk.
    let dumps_before = flight.dump_count();
    let reopened = DiskBackend::open(&store_dir).unwrap();
    let resumed = run_query_resumable(
        &plan,
        &config,
        &catalog,
        &FailureInjector::none(),
        &RunOptions::default(),
        &reopened,
    );
    assert_eq!(resumed.results, first.results, "healed resume must be bit-identical");
    assert!(resumed.segments_corrupt >= 1, "the torn segment must be detected");
    assert!(flight.dump_count() > dumps_before, "corruption must trigger a flight dump");
    assert_eq!(flight.dump_write_errors(), 0);

    // The dump file exists, names its trigger, parses as the same JSONL
    // schema every other tool reads, and ends on the trigger event.
    let dump_files: Vec<PathBuf> = std::fs::read_dir(&flight_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().contains("segment_corrupt")))
        .collect();
    assert!(!dump_files.is_empty(), "a segment_corrupt-triggered dump file must exist");
    let text = std::fs::read_to_string(&dump_files[0]).unwrap();
    let events =
        obs::export::from_jsonl(&text).expect("flight dump must replay without parse errors");
    assert!(!events.is_empty());
    assert_eq!(
        events.last().map(|e| e.name.as_str()),
        Some("segment_corrupt"),
        "the dump window must end on its trigger"
    );

    // The conformance checker replays the dump: a ring snapshot is a
    // truncated window, so findings are allowed — parse failures and
    // panics are not.
    let replay =
        check_trace(&dump_files[0].to_string_lossy(), &events, None, &CheckOptions::default());
    let _ = ReportSet::new(vec![replay]);

    // Endpoint smoke, in-process: serve the global registries and poll
    // exactly what `ftpde top` polls.
    let srv = obs::serve(obs::global()).unwrap();
    let addr = srv.addr();

    let (status, body) = obs::serve::http_get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    let health: serde::Value = serde_json::from_str(&body).unwrap();
    let dumps =
        health.get("flight").and_then(|f| f.get("dumps")).and_then(serde::Value::as_u64).unwrap();
    assert!(dumps >= 1, "dump count must surface on /healthz: {body}");

    let (status, body) = obs::serve::http_get(addr, "/queries").unwrap();
    assert_eq!(status, 200);
    let snap: obs::ProgressSnapshot = serde_json::from_str(&body).unwrap();
    let healed = snap
        .queries
        .iter()
        .find(|q| q.segments_corrupt >= 1)
        .expect("the healed run must report its corruption on /queries");
    assert_eq!(healed.state, "completed");
    assert!(healed.stages_total >= 1);

    let (status, body) = obs::serve::http_get(addr, "/flight").unwrap();
    assert_eq!(status, 200);
    let fl: serde::Value = serde_json::from_str(&body).unwrap();
    assert!(fl.get("recorded").and_then(serde::Value::as_u64).unwrap() > 0);
    assert!(
        fl.get("events").and_then(serde::Value::as_array).is_some_and(|a| !a.is_empty()),
        "{body}"
    );

    let (status, body) = obs::serve::http_get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("obs_flight_dumps_total"), "{body}");

    srv.stop();
    flight.set_dump_dir(None);
    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&flight_dir);
}
