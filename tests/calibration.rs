//! Calibration self-consistency: when the simulator is fed the cost
//! model's own parameters — same collapsed plan, same pipeline constant,
//! failure-free trace, negligible failure probability — every stage's
//! observed duration is exactly the predicted `tr + tm` and the query's
//! completion is exactly the dominant-path cost, so the calibration
//! report's errors must be ~0. Any drift here means the simulator and
//! the cost model have diverged on the execution semantics.

use ftpde::cluster::prelude::*;
use ftpde::core::dag::figure2_plan;
use ftpde::core::prelude::*;
use ftpde::obs::{export, CalibrationReport, MemoryRecorder};
use ftpde::sim::prelude::*;

#[test]
fn calibration_error_is_zero_on_the_models_own_parameters() {
    let plan = figure2_plan();
    // Practically failure-free: attempts a(c) ≈ 0, so predicted stage
    // cost collapses to tr + tm and T_Pt to the failure-free makespan.
    let params = CostParams::new(1e12, 1.0);
    let (best, _) =
        find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::default())
            .expect("valid plan");
    let breakdown = best.estimate.breakdown(&params);

    let cluster = ClusterConfig::new(10, 1e12, 1.0);
    let trace = FailureTrace::failure_free(&cluster, 1e9);
    let rec = MemoryRecorder::new();
    let r = simulate_traced(
        &plan,
        &best.config,
        Recovery::FineGrained,
        &cluster,
        &trace,
        &SimOptions::default(),
        Some(&breakdown),
        &rec,
    );

    let report = CalibrationReport::from_events(&rec.events());
    assert_eq!(report.stages.len(), breakdown.stages.len(), "every stage joined");
    for s in &report.stages {
        let err = s.rel_error.expect("all predictions are comparable");
        // Tolerance: the trace stores microsecond-rounded timestamps plus
        // the ~t/MTBF residual of the not-quite-zero failure probability.
        assert!(err.abs() < 1e-5, "stage {} rel error {err}", s.stage);
        assert_eq!(s.failures, 0);
        assert!(s.blame.total_s().abs() < 1e-4);
    }
    assert_eq!(report.queries.len(), 1);
    let q = &report.queries[0];
    assert!(q.rel_error.unwrap().abs() < 1e-5, "query rel error {:?}", q.rel_error);
    assert!((q.observed_s - r.completion).abs() < 1e-5);
    assert!(!q.aborted);

    // The whole report survives the offline path: JSONL round-trip, then
    // re-derivation from the parsed events.
    let parsed = export::from_jsonl(&export::to_jsonl(&rec.events())).unwrap();
    assert_eq!(CalibrationReport::from_events(&parsed), report);
}

#[test]
fn calibration_attributes_injected_failures_to_recovery_blame() {
    // A known failure: single node, chain scan(2,1) → join(3,1) → agg(1,1)
    // all materialized, node fails at t = 1.0 with MTTR 0.5 — the observed
    // recovery is exactly 1.0 s lost + 0.5 s repair on stage 0.
    let mut b = PlanDag::builder();
    let s = b.free("scan", 2.0, 1.0, &[]).unwrap();
    let j = b.free("join", 3.0, 1.0, &[s]).unwrap();
    b.free("agg", 1.0, 1.0, &[j]).unwrap();
    let plan = b.build().unwrap();

    let params = CostParams::new(1e12, 0.5); // predicted recovery ≈ 0
    let config = MatConfig::all(&plan);
    let breakdown = estimate_ft_plan(&plan, &config, &params).breakdown(&params);
    let cluster = ClusterConfig::new(1, 1e12, 0.5);
    let trace = FailureTrace::from_times(vec![vec![1.0]], 1e9);
    let rec = MemoryRecorder::new();
    simulate_traced(
        &plan,
        &config,
        Recovery::FineGrained,
        &cluster,
        &trace,
        &SimOptions::default(),
        Some(&breakdown),
        &rec,
    );

    let report = CalibrationReport::from_events(&rec.events());
    let failed = &report.stages[0];
    assert_eq!(failed.failures, 1);
    assert!((failed.observed_recovery_s - 1.5).abs() < 1e-6);
    // The stage ran 1.5 s longer than predicted, and the blame breakdown
    // pins that entirely on recovery — not on tr/tm miscalibration.
    assert!((failed.error_s - 1.5).abs() < 1e-4);
    assert!((failed.blame.recovery_s - 1.5).abs() < 1e-4);
    assert!(failed.blame.runtime_s.abs() < 1e-4);
    assert!(failed.blame.materialization_s.abs() < 1e-4);
    // The untouched downstream stages stay calibrated.
    for s in &report.stages[1..] {
        assert!(s.rel_error.unwrap().abs() < 1e-5);
        assert_eq!(s.failures, 0);
    }
    // Aggregate drift is positive: reality was slower than predicted.
    assert!(report.drift_score().unwrap() > 0.9);
}
