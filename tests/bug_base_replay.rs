//! Tier-1 gate: the committed bug base (`tests/bug_base.jsonl`) replays
//! against the current engine and every entry meets its contract —
//! `fixed` entries stay fixed (a regression turns the build red
//! forever), `quarantined` entries keep reproducing exactly the code
//! they were quarantined with (so a silent behavior change cannot hide
//! behind a known failure).

use std::path::PathBuf;
use std::process::Command;

use ftpde::simharness::prelude::*;

fn base_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/bug_base.jsonl")
}

fn load_base() -> BugBase {
    let text = std::fs::read_to_string(base_path()).expect("bug base is committed");
    BugBase::parse(&text).expect("bug base parses")
}

#[test]
fn committed_bug_base_parses_and_has_both_entry_kinds() {
    let base = load_base();
    assert!(base.entries.len() >= 2, "base holds {} entr(ies)", base.entries.len());
    assert!(base.entries.iter().any(|e| e.status == EntryStatus::Fixed));
    assert!(base.entries.iter().any(|e| e.status == EntryStatus::Quarantined));
    // Shrunk reproductions stay small — a bloated entry is a sign the
    // recording path skipped the shrinker.
    for e in &base.entries {
        assert!(
            e.case.schedule.len() <= 10,
            "seed {}: {} events is not a shrunk schedule",
            e.seed,
            e.case.schedule.len()
        );
    }
    // The committed file is in the canonical rendering, so a hand edit
    // that drifts from `to_jsonl` (or a schema bump without a rewrite)
    // shows up here rather than in diffs forever after.
    let text = std::fs::read_to_string(base_path()).unwrap();
    assert_eq!(text, base.to_jsonl(), "bug base is not canonically rendered");
}

#[test]
fn every_committed_entry_replays_green() {
    for result in load_base().replay() {
        assert!(result.ok, "seed {} [{}]: {}", result.seed, result.code, result.detail);
    }
}

#[test]
fn cli_replay_of_the_committed_base_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_ftpde"))
        .args(["sim", "--replay-bug-base", base_path().to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("2 ok") || stdout.contains("ok"), "{stdout}");
}
