//! End-to-end observability: an engine `run_query` with an injected node
//! failure, recorded through the obs layer and exported to both JSONL and
//! Chrome trace-event JSON. Both artifacts must parse back and contain
//! the per-stage spans, the failure instant, and the recovery
//! re-execution of the killed sub-plan.

use serde::Value;

use ftpde::core::collapse::CollapsedPlan;
use ftpde::core::config::MatConfig;
use ftpde::engine::prelude::*;
use ftpde::obs::{export, ArgValue, Event, MemoryRecorder, MetricsRegistry, Phase};
use ftpde::tpch::datagen::Database;

/// One traced Q3 run, two stages (the first join materialized), with node
/// 1's first attempt on the sink stage killed.
fn traced_failure_run() -> (Vec<Event>, usize, u32) {
    let plan = q3_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::from_free_bits(&dag, 0b01);
    let stages = CollapsedPlan::collapse(&dag, &config, 1.0).len();
    let sink = plan.sinks()[0];
    let injector = FailureInjector::with([Injection { stage: sink.0, node: 1, attempt: 0 }]);
    let catalog = load_catalog(&Database::generate(0.001, 42), 4);
    let rec = MemoryRecorder::new();
    let report =
        run_query_traced(&plan, &config, &catalog, &injector, &RunOptions::default(), None, &rec);
    assert_eq!(report.node_retries, 1, "exactly the injected failure");
    assert!(!report.results.is_empty());
    (rec.events(), stages, sink.0)
}

#[test]
fn jsonl_export_of_a_failed_run_parses_back_with_recovery() {
    let (events, stages, sink) = traced_failure_run();

    let dir = std::env::temp_dir().join("ftpde_trace_export_test");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("run.jsonl");
    export::write_file(&path, &export::to_jsonl(&events)).unwrap();
    let parsed = export::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(parsed, events, "JSONL round-trips the run losslessly");

    // One coordinator stage span per collapsed stage, on track 0.
    let stage_spans: Vec<&Event> =
        parsed.iter().filter(|e| e.phase == Phase::Span && e.name.starts_with("stage ")).collect();
    assert_eq!(stage_spans.len(), stages);
    assert!(stage_spans.iter().all(|e| e.tid == 0 && e.cat == "engine"));

    // The injected failure is an instant on node 1's track.
    let failures: Vec<&Event> = parsed.iter().filter(|e| e.name == "node_failure").collect();
    assert_eq!(failures.len(), 1);
    let failure = failures[0];
    assert_eq!(failure.phase, Phase::Instant);
    assert_eq!(failure.tid, 2, "node 1 records on track node+1");
    assert_eq!(failure.get_arg("stage"), Some(&ArgValue::U64(sink as u64)));
    assert_eq!(failure.get_arg("attempt"), Some(&ArgValue::U64(0)));

    // Recovery: a redeploy instant, then a successful re-execution of the
    // killed sub-plan — an attempt span on the same stage and node with
    // attempt 1 that starts no earlier than the failure.
    assert_eq!(parsed.iter().filter(|e| e.name == "redeploy").count(), 1);
    let retry = parsed
        .iter()
        .find(|e| {
            e.name == "attempt"
                && e.phase == Phase::Span
                && e.tid == 2
                && e.get_arg("attempt") == Some(&ArgValue::U64(1))
        })
        .expect("the killed sub-plan re-executes");
    assert_eq!(retry.get_arg("stage"), Some(&ArgValue::U64(sink as u64)));
    assert_eq!(retry.get_arg("ok"), Some(&ArgValue::Bool(true)));
    assert!(retry.ts_us >= failure.ts_us, "recovery follows the failure");

    // The run closes with a completion instant.
    assert_eq!(parsed.last().unwrap().name, "query_completed");
}

#[test]
fn chrome_trace_of_a_failed_run_has_spans_and_the_failure_instant() {
    let (events, stages, _) = traced_failure_run();
    let root: Value = serde_json::from_str(&export::to_chrome_trace(&events)).unwrap();
    assert_eq!(root.get("displayTimeUnit").and_then(Value::as_str), Some("ms"));
    let trace_events = root.get("traceEvents").and_then(Value::as_array).unwrap();
    assert_eq!(trace_events.len(), events.len());

    let name_of = |v: &Value| v.get("name").and_then(Value::as_str).map(str::to_owned);
    let spans: Vec<&Value> =
        trace_events.iter().filter(|v| v.get("ph").and_then(Value::as_str) == Some("X")).collect();
    // Every span carries a duration; the stage spans are all present.
    assert!(spans.iter().all(|v| v.get("dur").and_then(Value::as_u64).is_some()));
    let stage_span_count =
        spans.iter().filter(|v| name_of(v).is_some_and(|n| n.starts_with("stage "))).count();
    assert_eq!(stage_span_count, stages);

    // The failure renders as a thread-scoped instant on node 1's track.
    let failure = trace_events
        .iter()
        .find(|v| name_of(v) == Some("node_failure".into()))
        .expect("failure instant exported");
    assert_eq!(failure.get("ph").and_then(Value::as_str), Some("i"));
    assert_eq!(failure.get("s").and_then(Value::as_str), Some("t"));
    assert_eq!(failure.get("tid").and_then(Value::as_u64), Some(2));
}

// --- exporter edge cases -------------------------------------------------

#[test]
fn exporters_handle_an_empty_recorder() {
    let rec = MemoryRecorder::new();
    let events = rec.events();
    assert!(events.is_empty());

    // JSONL: empty in, empty out, round-trips to no events.
    assert_eq!(export::to_jsonl(&events), "");
    assert_eq!(export::from_jsonl("").unwrap(), Vec::<Event>::new());

    // Chrome trace: valid JSON with an empty traceEvents array.
    let root: Value = serde_json::from_str(&export::to_chrome_trace(&events)).unwrap();
    assert_eq!(root.get("traceEvents").and_then(Value::as_array).map(<[_]>::len), Some(0));

    // Prometheus: an empty registry exports an empty document — no stray
    // `# TYPE` headers for metrics that were never recorded.
    assert_eq!(export::to_prometheus(&MetricsRegistry::new().snapshot()), "");

    // Calibration over no events: empty report, no quantiles, no drift.
    let report = ftpde::obs::CalibrationReport::from_events(&events);
    assert!(report.stages.is_empty() && report.queries.is_empty());
    assert!(report.stage_error_stats().is_none());
    assert!(report.drift_score().is_none());
}

#[test]
fn a_span_opened_but_never_closed_is_dropped_not_corrupted() {
    use ftpde::core::collapse::CId;
    use ftpde::sim::event::{SimEvent, SimLog};

    // A simulation timeline that dies mid-stage: stage 0 completes, stage 1
    // starts but never finishes, and no query terminator is recorded.
    let mut log = SimLog::collecting();
    log.push(SimEvent::StageStarted { stage: CId(0), at: 0.0 });
    log.push(SimEvent::StageCompleted { stage: CId(0), at: 1.0 });
    log.push(SimEvent::StageStarted { stage: CId(1), at: 1.0 });
    let events = log.to_obs_events();

    // The unclosed stage contributes no span — only the closed one does —
    // and every exporter stays well-formed on the truncated timeline.
    let spans: Vec<&Event> = events.iter().filter(|e| e.phase == Phase::Span).collect();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].name, "stage 0");

    let parsed = export::from_jsonl(&export::to_jsonl(&events)).unwrap();
    assert_eq!(parsed, events);
    let root: Value = serde_json::from_str(&export::to_chrome_trace(&events)).unwrap();
    let trace_events = root.get("traceEvents").and_then(Value::as_array).unwrap();
    assert!(trace_events.iter().all(|v| v.get("ph").and_then(Value::as_str) != Some("X")
        || v.get("dur").and_then(Value::as_u64).is_some()));

    // Calibration sees no terminator: no query row, and the one closed
    // stage has no prediction tags, so no stage rows either.
    let report = ftpde::obs::CalibrationReport::from_events(&events);
    assert!(report.queries.is_empty());
    assert!(report.stages.is_empty());
}

#[test]
fn out_of_order_timestamps_survive_every_exporter() {
    // A hand-built trace whose events arrive out of timestamp order (a
    // late-flushed failure instant), with prediction tags so the
    // calibration join has to place the failure inside the span interval.
    let events = vec![
        Event::span("stage 0", "sim", 0, 3_000_000)
            .arg("stage", 0u64)
            .arg("pred_run_s", 1.0)
            .arg("pred_mat_s", 0.5)
            .arg("pred_rec_s", 0.0),
        Event::instant("query_completed", "sim", 3_000_000),
        // Flushed last, timestamped first: a failure 1 s into stage 0.
        Event::instant("node_failure", "sim", 1_000_000)
            .arg("stage", 0u64)
            .arg("lost_s", 1.0)
            .arg("resumes_at_s", 1.5),
        Event::instant("plan_estimate", "sim", 0).arg("pred_cost_s", 1.5),
    ];

    // JSONL and Chrome both preserve the recorded order verbatim.
    let parsed = export::from_jsonl(&export::to_jsonl(&events)).unwrap();
    assert_eq!(parsed, events);
    let root: Value = serde_json::from_str(&export::to_chrome_trace(&events)).unwrap();
    let trace_events = root.get("traceEvents").and_then(Value::as_array).unwrap();
    assert_eq!(trace_events.len(), events.len());
    assert_eq!(trace_events[2].get("ts").and_then(Value::as_u64), Some(1_000_000));

    // The calibration join is order-independent: the failure lands on
    // stage 0 by (stage, interval), not by position in the stream.
    let report = ftpde::obs::CalibrationReport::from_events(&events);
    assert_eq!(report.stages.len(), 1);
    assert_eq!(report.stages[0].failures, 1);
    assert!((report.stages[0].observed_recovery_s - 1.5).abs() < 1e-9);
    assert_eq!(report.queries.len(), 1);
    assert!((report.queries[0].observed_s - 3.0).abs() < 1e-9);

    // And the Prometheus side accepts metrics derived from that report.
    let reg = MetricsRegistry::new();
    report.export_metrics(&reg);
    let prom = export::to_prometheus(&reg.snapshot());
    assert!(prom.contains("# TYPE calibration_stage_count gauge"));
    assert!(prom.contains("calibration_stage_count 1"));
}
