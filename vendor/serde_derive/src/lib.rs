//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` crate's value data model, parsing the item with
//! hand-rolled token inspection (no `syn`/`quote` — the build environment
//! has no registry access). Supports the shapes the workspace uses:
//! non-generic structs (named, tuple, unit) and enums with unit, tuple and
//! struct variants. `#[serde(...)]` attributes are not supported and any
//! encountered attribute is ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// A parsed item: struct or enum with variants.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips `#[...]` attribute sequences starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Counts the comma-separated entries of a tuple field group, ignoring
/// commas nested in `<...>` generics.
fn tuple_arity(group: &[TokenTree]) -> usize {
    if group.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut arity = 1;
    let mut saw_tokens_since_comma = false;
    for tt in group {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        arity -= 1; // trailing comma
    }
    arity
}

/// Parses the names of named fields inside a brace group. Skips
/// attributes, visibility, and the type after each `:` (tracking `<...>`
/// depth so commas inside generics don't split fields).
fn named_fields(group: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs(group, i);
        if i >= group.len() {
            break;
        }
        i = skip_vis(group, i);
        let TokenTree::Ident(name) = &group[i] else {
            panic!("serde derive: expected field name, got {:?}", group[i]);
        };
        fields.push(name.to_string());
        i += 1;
        assert!(is_punct(&group[i], ':'), "serde derive: expected `:` after field name");
        i += 1;
        // Skip the type: until a top-level comma or end of group.
        let mut depth = 0i32;
        while i < group.len() {
            match &group[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_fields_group(tt: &TokenTree) -> Option<Fields> {
    match tt {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Some(Fields::Named(named_fields(&inner)))
        }
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Some(Fields::Tuple(tuple_arity(&inner)))
        }
        _ => None,
    }
}

/// Parses enum variants from the enum's brace group.
fn parse_variants(group: &[TokenTree]) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs(group, i);
        if i >= group.len() {
            break;
        }
        let TokenTree::Ident(name) = &group[i] else {
            panic!("serde derive: expected variant name, got {:?}", group[i]);
        };
        let vname = name.to_string();
        i += 1;
        let fields = if i < group.len() {
            match parse_fields_group(&group[i]) {
                Some(f) => {
                    i += 1;
                    f
                }
                None => Fields::Unit,
            }
        } else {
            Fields::Unit
        };
        // Skip an optional discriminant `= expr` up to the next top-level
        // comma.
        while i < group.len() && !is_punct(&group[i], ',') {
            i += 1;
        }
        i += 1; // past the comma
        variants.push((vname, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde derive (vendored): generic types are not supported");
    }
    match kind.as_str() {
        "struct" => {
            let fields = if i < tokens.len() {
                parse_fields_group(&tokens[i]).unwrap_or(Fields::Unit)
            } else {
                Fields::Unit
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let TokenTree::Group(g) = &tokens[i] else {
                panic!("serde derive: expected enum body");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Item::Enum { name, variants: parse_variants(&inner) }
        }
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

// --- code generation -----------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let mut s = String::from(
                        "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                    );
                    for f in names {
                        s.push_str(&format!(
                            "__o.push((\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
                        ));
                    }
                    s.push_str("::serde::Value::Object(__o)");
                    s
                }
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n fn serialize(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::serialize(__f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let sers: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            sers.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let pushes: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n fn serialize(&self) -> ::serde::Value {{\n match self {{\n {arms} }}\n }}\n}}\n"
            )
        }
    }
}

fn gen_named_build(path: &str, names: &[String], obj_expr: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize(::serde::__field({obj_expr}, \"{f}\")?)?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", fields.join(", "))
}

fn gen_tuple_build(path: &str, n: usize, arr_expr: &str) -> String {
    let fields: Vec<String> =
        (0..n).map(|i| format!("::serde::Deserialize::deserialize(&{arr_expr}[{i}])?")).collect();
    format!("{path}({})", fields.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => format!(
                    "let __obj = __v.as_object_slice().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\nOk({})",
                    gen_named_build(name, names, "__obj")
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
                }
                Fields::Tuple(n) => format!(
                    "let __a = __v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\nif __a.len() != {n} {{ return Err(::serde::Error::expected(\"array of length {n}\", \"{name}\")); }}\nOk({})",
                    gen_tuple_build(name, *n, "__a")
                ),
                Fields::Unit => format!(
                    "if __v.is_null() {{ Ok({name}) }} else {{ Err(::serde::Error::expected(\"null\", \"{name}\")) }}"
                ),
            };
            format!(
                "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n {body}\n }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
                    }
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::deserialize(__inner)?)),\n"
                    )),
                    Fields::Tuple(n) => data_arms.push_str(&format!(
                        "\"{v}\" => {{ let __a = __inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{v}\"))?; if __a.len() != {n} {{ return Err(::serde::Error::expected(\"array of length {n}\", \"{name}::{v}\")); }} Ok({}) }}\n",
                        gen_tuple_build(&format!("{name}::{v}"), *n, "__a")
                    )),
                    Fields::Named(names) => data_arms.push_str(&format!(
                        "\"{v}\" => {{ let __obj = __inner.as_object_slice().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{v}\"))?; Ok({}) }}\n",
                        gen_named_build(&format!("{name}::{v}"), names, "__obj")
                    )),
                }
            }
            format!(
                "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n match __v {{\n ::serde::Value::Str(__s) => match __s.as_str() {{\n {unit_arms} _ => Err(::serde::Error::msg(format!(\"unknown variant `{{__s}}` of {name}\"))),\n }},\n ::serde::Value::Object(__o) if __o.len() == 1 => {{\n let (__k, __inner) = &__o[0];\n match __k.as_str() {{\n {data_arms} _ => Err(::serde::Error::msg(format!(\"unknown variant `{{__k}}` of {name}\"))),\n }}\n }},\n _ => Err(::serde::Error::expected(\"string or single-key object\", \"{name}\")),\n }}\n }}\n}}\n"
            )
        }
    }
}

/// Derives `serde::Serialize` (vendored value-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored value-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}
