//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`],
//! benchmark groups, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple wall-clock loop
//! (short warm-up, then a fixed sampling window) reporting the mean
//! time per iteration — adequate for relative comparisons, with none of
//! upstream's statistical machinery.

use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration setup output is batched. The stand-in runs one
/// setup per iteration regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values; upstream batches many per allocation.
    SmallInput,
    /// Large setup values; upstream batches few.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measures a single routine.
pub struct Bencher {
    warm_up: Duration,
    window: Duration,
    /// Mean wall-clock time per iteration, filled in by `iter*`.
    mean: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    fn new(warm_up: Duration, window: Duration) -> Self {
        Bencher { warm_up, window, mean: None, iterations: 0 }
    }

    /// Benchmarks `routine` by calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            black_box(routine());
        });
    }

    /// Benchmarks `routine` on a fresh value from `setup` each iteration.
    /// Setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        let deadline = Instant::now() + self.window;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        self.record(spent, iters);
    }

    fn run(&mut self, mut routine: impl FnMut()) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            routine();
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let deadline = start + self.window;
        while Instant::now() < deadline {
            routine();
            iters += 1;
        }
        self.record(start.elapsed(), iters);
    }

    fn record(&mut self, spent: Duration, iters: u64) {
        let iters = iters.max(1);
        self.mean = Some(spent / iters as u32);
        self.iterations = iters;
    }
}

fn render(name: &str, b: &Bencher) {
    let mean = b.mean.unwrap_or_default();
    let pretty = if mean < Duration::from_micros(10) {
        format!("{:.1} ns", mean.as_nanos() as f64)
    } else if mean < Duration::from_millis(10) {
        format!("{:.2} µs", mean.as_nanos() as f64 / 1e3)
    } else {
        format!("{:.2} ms", mean.as_nanos() as f64 / 1e6)
    };
    println!("{name:<48} time: {pretty}   ({} iterations)", b.iterations);
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warm_up: Duration::from_millis(50), window: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Sets the per-benchmark sampling window.
    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, warm_up: Duration) -> Self {
        self.warm_up = warm_up;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.warm_up, self.window);
        f(&mut b);
        render(name, &b);
        self
    }

    /// Starts a named group; members render as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.window);
        f(&mut b);
        render(&format!("{}/{}", self.name, name), &b);
        self
    }

    /// Finishes the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_measures_something() {
        let mut c = fast();
        c.bench_function("t/iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("t/batched", |b| {
            b.iter_batched(|| vec![1u64; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn groups_render_and_finish() {
        let mut c = fast();
        let mut g = c.benchmark_group("g");
        g.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    fn target_a(c: &mut Criterion) {
        c.bench_function("macro/a", |b| b.iter(|| black_box(2 * 2)));
    }

    criterion_group!(benches, target_a);

    #[test]
    fn group_macro_produces_runner() {
        // criterion_main! would define `main`; here just run the group fn.
        benches();
    }
}
