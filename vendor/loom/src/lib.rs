//! Offline stand-in for `loom`: cooperative randomized schedule
//! exploration for concurrency models.
//!
//! The real `loom` exhaustively model-checks every interleaving of a
//! bounded concurrent program with DPOR and a simulated weak-memory
//! model. This stand-in keeps loom's *API shape* and *discipline* (all
//! synchronization goes through `loom::sync` / `loom::thread`, the model
//! body must be deterministic, [`model`] runs it many times) but explores
//! schedules by **random sampling** instead of exhaustively:
//!
//! * exactly one model thread runs at a time; every instrumented
//!   operation (atomic access, mutex acquisition, spawn, join,
//!   [`thread::yield_now`]) is a *schedule point* where a seeded RNG
//!   picks the next runnable thread;
//! * [`model`] re-runs the closure `LOOM_MAX_ITERS` times (default 128),
//!   each iteration with a different deterministic seed, so a failure
//!   reproduces by re-running the same build;
//! * atomic orderings are upgraded to `SeqCst` — the stand-in explores
//!   *interleavings*, not weak-memory reorderings.
//!
//! Panics in any model thread (assertion failures — the way loom tests
//! report a violated invariant) propagate out of [`model`]. Deadlocks
//! (every live thread blocked on `join`) and runaway schedules are
//! detected and panic with a diagnostic.
//!
//! The subset implemented is what the workspace's protocol models use:
//! `loom::model`, `loom::thread::{spawn, yield_now, JoinHandle}`,
//! `loom::sync::{Arc, Mutex, MutexGuard}` and
//! `loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize,
//! Ordering}`.

use std::cell::RefCell;
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Default number of randomized schedules explored per [`model`] call.
const DEFAULT_ITERS: usize = 128;
/// Schedule points allowed per iteration before declaring a livelock.
const STEP_LIMIT: u64 = 1_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// May be granted the execution token.
    Runnable,
    /// Blocked until the given thread finishes.
    WaitingJoin(usize),
    /// Ran to completion (or unwound).
    Finished,
}

#[derive(Debug)]
struct State {
    rng: u64,
    active: usize,
    steps: u64,
    threads: Vec<TState>,
    /// First panic message observed in a model thread, until claimed by a
    /// `join` that returns it as an `Err`.
    first_panic: Option<String>,
}

#[derive(Debug)]
struct Sched {
    state: StdMutex<State>,
    cv: Condvar,
}

impl Sched {
    fn new(seed: u64) -> Self {
        Sched {
            state: StdMutex::new(State {
                // SplitMix64 needs a non-zero-ish scramble; any seed works.
                rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
                active: 0,
                steps: 0,
                threads: Vec::new(),
                first_panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, State> {
        // A panicking model thread poisons the state lock while the other
        // threads still need it to finish the iteration; poison carries no
        // information here (the panic itself is recorded in the state).
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn rng_next(st: &mut State) -> u64 {
        // SplitMix64: deterministic, seedable, dependency-free.
        st.rng = st.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = st.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Wakes joiners whose target has finished.
    fn resolve_joins(st: &mut State) {
        for i in 0..st.threads.len() {
            if let TState::WaitingJoin(t) = st.threads[i] {
                if st.threads[t] == TState::Finished {
                    st.threads[i] = TState::Runnable;
                }
            }
        }
    }

    /// Picks the next thread to run. Must be called with the lock held.
    /// A join deadlock (no runnable thread while some still live) records
    /// a diagnostic and collapses the iteration: every thread is marked
    /// finished so blocked waiters unwind, and [`model`] re-raises the
    /// recorded message.
    fn pick_next(&self, st: &mut State) {
        Self::resolve_joins(st);
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == TState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if !st.threads.iter().all(|t| *t == TState::Finished) {
                st.first_panic.get_or_insert_with(|| {
                    "loom stand-in: deadlock — every live thread is blocked on join".to_string()
                });
                for t in &mut st.threads {
                    *t = TState::Finished;
                }
            }
            self.cv.notify_all();
            return;
        }
        let idx = (Self::rng_next(st) % runnable.len() as u64) as usize;
        st.active = runnable[idx];
        self.cv.notify_all();
    }

    /// A schedule point for thread `me`: yields the execution token to a
    /// randomly chosen runnable thread (possibly `me` again) and blocks
    /// until `me` is granted the token back.
    fn schedule(&self, me: usize) {
        let mut st = self.lock();
        st.steps += 1;
        assert!(
            st.steps < STEP_LIMIT,
            "loom stand-in: schedule exceeded {STEP_LIMIT} points (livelock in the model?)"
        );
        self.pick_next(&mut st);
        self.wait_granted(me, st);
    }

    /// Blocks until `me` holds the token and is runnable.
    fn wait_granted(&self, me: usize, mut st: StdMutexGuard<'_, State>) {
        while !(st.active == me && st.threads[me] == TState::Runnable) {
            if st.threads.iter().all(|t| *t == TState::Finished) {
                return; // iteration collapsed under a panic; unwind quietly
            }
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Marks `me` finished and hands the token to someone else.
    fn finish(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me] = TState::Finished;
        if st.threads.iter().all(|t| *t == TState::Finished) {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st);
    }

    fn register(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(TState::Runnable);
        st.threads.len() - 1
    }
}

#[derive(Clone)]
struct Ctx {
    sched: StdArc<Sched>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Inserts a schedule point when called from inside a model.
fn schedule_point() {
    if let Some(c) = ctx() {
        c.sched.schedule(c.tid);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "model thread panicked (opaque payload)".to_string())
}

/// Runs a model thread body on an OS thread under the scheduler's token
/// discipline, recording panics.
fn run_model_thread<T, F>(sched: &StdArc<Sched>, tid: usize, f: F) -> std::thread::Result<T>
where
    F: FnOnce() -> T,
{
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { sched: StdArc::clone(sched), tid }));
    {
        let st = sched.lock();
        sched.wait_granted(tid, st);
    }
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    if let Err(p) = &out {
        let mut st = sched.lock();
        let msg = panic_message(p.as_ref());
        st.first_panic.get_or_insert(msg);
    }
    sched.finish(tid);
    CTX.with(|c| *c.borrow_mut() = None);
    out
}

/// Explores randomized interleavings of `f`: runs it once per iteration
/// (default 128, override with the `LOOM_MAX_ITERS` environment variable),
/// each under a differently-seeded cooperative scheduler. Panics if any
/// iteration's model thread panics or deadlocks.
///
/// # Panics
/// Propagates the first model-thread panic; also panics on nested
/// `model` calls, join deadlocks and runaway (`> 10^6` point) schedules.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(ctx().is_none(), "loom stand-in: nested model() calls are not supported");
    let iters = std::env::var("LOOM_MAX_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERS);
    let f = StdArc::new(f);
    for seed in 0..iters as u64 {
        let sched = StdArc::new(Sched::new(seed));
        let root = sched.register();
        debug_assert_eq!(root, 0);
        let (sched2, f2) = (StdArc::clone(&sched), StdArc::clone(&f));
        let handle = std::thread::spawn(move || run_model_thread(&sched2, root, move || f2()));
        // The root result also carries any panic; spawned-but-unjoined
        // threads record theirs in the scheduler state.
        let root_result = handle.join().expect("model root OS thread must not die");
        // Wait until every model thread (joined or not) has finished.
        {
            let mut st = sched.lock();
            while !st.threads.iter().all(|t| *t == TState::Finished) {
                st = sched.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let recorded = sched.lock().first_panic.take();
        if let Err(p) = root_result {
            panic!("loom stand-in (seed {seed}/{iters}): {}", panic_message(p.as_ref()));
        }
        if let Some(msg) = recorded {
            panic!("loom stand-in (seed {seed}/{iters}): {msg}");
        }
    }
}

pub mod thread {
    //! Model-aware threads: one OS thread each, but only one runs at a
    //! time, coordinated by the iteration's scheduler.

    use std::sync::{Arc as StdArc, Mutex as StdMutex};

    use super::{ctx, run_model_thread, schedule_point, Ctx, TState};

    /// Handle to a model thread, joinable like `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        tid: usize,
        result: StdArc<StdMutex<Option<std::thread::Result<T>>>>,
        os: std::thread::JoinHandle<()>,
    }

    /// Spawns a model thread.
    ///
    /// # Panics
    /// Panics when called outside a [`crate::model`] body.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let c = ctx().expect("loom stand-in: thread::spawn outside model()");
        let tid = c.sched.register();
        let result = StdArc::new(StdMutex::new(None));
        let slot = StdArc::clone(&result);
        let sched = StdArc::clone(&c.sched);
        let os = std::thread::spawn(move || {
            let out = run_model_thread(&sched, tid, f);
            *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
        });
        // Spawning is itself a schedule point: the child may run first.
        schedule_point();
        JoinHandle { tid, result, os }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload, like `std`).
        ///
        /// # Panics
        /// Panics if called outside the model the thread belongs to.
        pub fn join(self) -> std::thread::Result<T> {
            let Ctx { sched, tid: me } = ctx().expect("loom stand-in: join outside model()");
            {
                let mut st = sched.lock();
                if st.threads[self.tid] != TState::Finished {
                    st.threads[me] = TState::WaitingJoin(self.tid);
                    sched.pick_next(&mut st);
                    sched.wait_granted(me, st);
                }
            }
            // The model thread has finished; reap its OS thread (quick)
            // and take the stored result.
            self.os.join().expect("model OS thread must not die outside its body");
            let out = self
                .result
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("finished model thread stored a result");
            if out.is_err() {
                // The caller is observing this panic; don't re-raise it at
                // the end of the iteration.
                sched.lock().first_panic = None;
            }
            out
        }
    }

    /// A pure schedule point.
    pub fn yield_now() {
        schedule_point();
    }
}

pub mod sync {
    //! Instrumented synchronization primitives.

    pub use std::sync::Arc;
    use std::sync::{LockResult, PoisonError, TryLockError};

    use super::schedule_point;

    /// Guard returned by [`Mutex::lock`].
    #[derive(Debug)]
    pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }
    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    /// A mutex whose acquisition is a schedule point. Contention is
    /// resolved by re-yielding until the holder releases — with random
    /// scheduling the holder is eventually granted the token.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a new instrumented mutex.
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock; mirrors `std`'s poisoning API (the real
        /// loom also returns a `LockResult`).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            if super::ctx().is_none() {
                // Outside a model: block like a plain mutex.
                return match self.0.lock() {
                    Ok(g) => Ok(MutexGuard(g)),
                    Err(e) => Err(PoisonError::new(MutexGuard(e.into_inner()))),
                };
            }
            loop {
                schedule_point();
                match self.0.try_lock() {
                    Ok(g) => return Ok(MutexGuard(g)),
                    Err(TryLockError::Poisoned(e)) => {
                        return Err(PoisonError::new(MutexGuard(e.into_inner())));
                    }
                    Err(TryLockError::WouldBlock) => {}
                }
            }
        }

        /// Tries to acquire the lock without blocking.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            schedule_point();
            match self.0.try_lock() {
                Ok(g) => Some(MutexGuard(g)),
                Err(TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
                Err(TryLockError::WouldBlock) => None,
            }
        }
    }

    pub mod atomic {
        //! Atomics whose every access is a schedule point. Orderings are
        //! accepted for API compatibility and upgraded to `SeqCst`: the
        //! stand-in explores interleavings, not weak-memory reorderings.

        pub use std::sync::atomic::Ordering;
        use std::sync::atomic::Ordering::SeqCst;

        use super::super::schedule_point;

        macro_rules! int_atomic {
            ($name:ident, $std:path, $int:ty) => {
                /// An instrumented integer atomic.
                #[derive(Debug, Default)]
                pub struct $name($std);

                #[allow(missing_docs)]
                impl $name {
                    pub fn new(v: $int) -> Self {
                        Self(<$std>::new(v))
                    }
                    pub fn load(&self, _order: Ordering) -> $int {
                        schedule_point();
                        self.0.load(SeqCst)
                    }
                    pub fn store(&self, v: $int, _order: Ordering) {
                        schedule_point();
                        self.0.store(v, SeqCst);
                    }
                    pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                        schedule_point();
                        self.0.swap(v, SeqCst)
                    }
                    pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                        schedule_point();
                        self.0.fetch_add(v, SeqCst)
                    }
                    pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                        schedule_point();
                        self.0.fetch_sub(v, SeqCst)
                    }
                    pub fn fetch_max(&self, v: $int, _order: Ordering) -> $int {
                        schedule_point();
                        self.0.fetch_max(v, SeqCst)
                    }
                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$int, $int> {
                        schedule_point();
                        self.0.compare_exchange(current, new, SeqCst, SeqCst)
                    }
                }
            };
        }

        int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// An instrumented boolean atomic.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        #[allow(missing_docs)]
        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }
            pub fn load(&self, _order: Ordering) -> bool {
                schedule_point();
                self.0.load(SeqCst)
            }
            pub fn store(&self, v: bool, _order: Ordering) {
                schedule_point();
                self.0.store(v, SeqCst);
            }
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                schedule_point();
                self.0.swap(v, SeqCst)
            }
            pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
                schedule_point();
                self.0.fetch_or(v, SeqCst)
            }
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<bool, bool> {
                schedule_point();
                self.0.compare_exchange(current, new, SeqCst, SeqCst)
            }
        }
    }
}
