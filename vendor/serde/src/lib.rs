//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` models serialization through `Serializer`/
//! `Deserializer` visitors; this vendored replacement uses a much simpler
//! self-describing [`Value`] data model, which is all the workspace needs:
//! every type in the repository either `#[derive(Serialize, Deserialize)]`s
//! or round-trips through `serde_json::{to_string, from_str}`.
//!
//! The JSON conventions mirror upstream serde's defaults so exported data
//! stays interchangeable: structs are objects, newtype structs are their
//! inner value, unit enum variants are strings, data-carrying variants are
//! single-key objects, `None` is `null`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value (the serde data model, flattened).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that does not fit `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric representation coerces).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as an `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// The value as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            Value::Float(f) if f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as object entries, if it is an object.
    pub fn as_object_slice(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `true` iff the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object_slice().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// A free-form error.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        Error(format!("expected {what} while deserializing {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the value data model.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from the value data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Field lookup helper used by derived `Deserialize` impls.
#[doc(hidden)]
pub fn __field<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{key}`")))
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        match u64::try_from(*self) {
            Ok(u) => Value::UInt(u),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s.parse().map_err(|_| Error::expected("u128", "u128")),
            _ => v.as_u64().map(u128::from).ok_or_else(|| Error::expected("u128", "u128")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // serde_json serializes non-finite floats as null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        (*self as f64).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("boolean", "bool"))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the decoded string to obtain `'static`. Upstream borrows
    /// from the input instead; this stand-in's `Value` tree cannot lend
    /// out references, and the workspace only round-trips small
    /// column-name literals, so the leak is bounded and acceptable.
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v.as_str() {
            Some(s) => Ok(Box::leak(s.to_owned().into_boxed_str())),
            None => Err(Error::expected("string", "&'static str")),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --- container impls -----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                let expected = [$($idx),+].len();
                if a.len() != expected {
                    return Err(Error::msg(format!(
                        "tuple length mismatch: expected {expected}, got {}", a.len()
                    )));
                }
                Ok(($($t::deserialize(&a[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object_slice()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Deterministic output: sort keys like serde_json's BTreeMap does.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object_slice()
            .ok_or_else(|| Error::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::expected("null", "()"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(String::deserialize(&"hi".to_string().serialize()).unwrap(), "hi");
    }

    #[test]
    fn big_u64_survives() {
        let big = u64::MAX;
        assert_eq!(u64::deserialize(&big.serialize()).unwrap(), big);
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(Vec::<Option<u32>>::deserialize(&v.serialize()).unwrap(), v);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u8, -2i64, 3.5f64, "x".to_string());
        assert_eq!(<(u8, i64, f64, String)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn non_finite_floats_serialize_to_null() {
        assert_eq!(f64::NAN.serialize(), Value::Null);
        assert_eq!(f64::INFINITY.serialize(), Value::Null);
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert!(v.get("b").is_none());
        assert_eq!(Value::Float(2.0).as_u64(), Some(2));
        assert_eq!(Value::Int(-1).as_u64(), None);
    }
}
