//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range and tuple strategies, [`any`], [`collection::vec`],
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros, and
//! [`test_runner::ProptestConfig`]. Cases are generated from a seed
//! derived from the test name, so runs are fully deterministic; there is
//! no shrinking — a failing case reports its index and seed instead.

use std::ops::{Range, RangeInclusive};

pub use rand;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-case random source handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification accepted by [`vec()`](vec()).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// Strategy returned by [`vec()`](vec()).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Runner configuration and failure plumbing.
pub mod test_runner {
    /// How many random cases each `proptest!` test executes.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed with this message.
        Fail(String),
        /// The case was rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection carrying `msg`.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

/// Drives one `proptest!`-generated test: seeds deterministically from the
/// test name, draws `config.cases` values, and panics with the case index
/// and seed on the first failure. Rejected cases are skipped (up to a cap).
pub fn run_proptest<S: Strategy>(
    config: test_runner::ProptestConfig,
    name: &str,
    strategy: S,
    mut run: impl FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
) {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    let mut rng: TestRng = SeedableRng::seed_from_u64(seed);
    let mut rejected = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        let value = strategy.generate(&mut rng);
        match run(value) {
            Ok(()) => case += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(8).max(256),
                    "proptest '{name}': too many rejected cases"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {case} (seed {seed:#x}): {msg}")
            }
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(
                    $config,
                    stringify!($name),
                    ($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(1);
        let strat = (0u8..5, 1.0f64..2.0, 0usize..=3);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 5);
            assert!((1.0..2.0).contains(&b));
            assert!(c <= 3);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(2);
        let strat = collection::vec(any::<u64>(), 1..=6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..=6).contains(&v.len()));
        }
        let fixed = collection::vec(0u8..2, 4usize);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }

    #[test]
    fn prop_map_composes() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(3);
        let strat = collection::vec((1.0f64..2.0, 0.0f64..1.0), 2..=2)
            .prop_map(|v| v.into_iter().map(|(a, b)| a + b).sum::<f64>());
        let s = strat.generate(&mut rng);
        assert!((1.0..6.0).contains(&s));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts return Err on failure.
        #[test]
        fn macro_roundtrip(x in 0u32..100, y in any::<bool>(), v in collection::vec(0i64..10, 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(y, y);
            prop_assert!(v.len() < 4, "len {}", v.len());
        }

        #[test]
        fn single_argument_form(n in 1usize..6) {
            prop_assert!((1..6).contains(&n));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_proptest(ProptestConfig::with_cases(4), "always_fails", (0u8..10,), |(_x,)| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let once: Vec<u64> = {
            let mut out = vec![];
            crate::run_proptest(ProptestConfig::with_cases(8), "det", (any::<u64>(),), |(v,)| {
                out.push(v);
                Ok(())
            });
            out
        };
        let twice: Vec<u64> = {
            let mut out = vec![];
            crate::run_proptest(ProptestConfig::with_cases(8), "det", (any::<u64>(),), |(v,)| {
                out.push(v);
                Ok(())
            });
            out
        };
        assert_eq!(once, twice);
    }
}
