//! Offline stand-in for `serde_json`: serializes the vendored `serde`
//! value model to JSON text and parses JSON text back.
//!
//! Output conventions follow upstream serde_json: object key order is
//! preserved, floats use Rust's shortest round-trippable representation,
//! non-finite floats become `null`, and integers are emitted exactly.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON encoding/decoding error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

// --- serialization -------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trippable float formatting; always
                // valid JSON (no `inf`/`NaN` reach this arm).
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    // Keep float-ness visible, as serde_json does ("1.0").
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(item, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(0));
    Ok(out)
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Rebuilds a `T` from a [`Value`].
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::deserialize(value)?)
}

// --- parsing -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                // Multi-byte UTF-8: copy the full sequence verbatim.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::deserialize(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for s in ["null", "true", "false", "0", "-7", "18446744073709551615", "1.5", "\"hi\""] {
            let v: Value = from_str(s).unwrap();
            assert_eq!(to_string(&v).unwrap(), s, "round-tripping {s}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":{}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        let back: f64 = from_str("3.0").unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
        // Multi-byte characters pass through unescaped.
        let s: String = from_str(&to_string("héllo😀").unwrap()).unwrap();
        assert_eq!(s, "héllo😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn pretty_is_reparseable() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn big_integers_stay_exact() {
        let u: u64 = from_str("12345678901234567890").unwrap();
        assert_eq!(u, 12345678901234567890);
        let i: i64 = from_str("-9223372036854775808").unwrap();
        assert_eq!(i, i64::MIN);
    }
}
