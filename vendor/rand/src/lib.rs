//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the 0.8 API the workspace uses: the [`Rng`] and
//! [`SeedableRng`] traits, `StdRng`/`SmallRng` seeded via `seed_from_u64`,
//! uniform `gen::<f64>()`, `gen_range` over integer and float ranges, and
//! `gen_bool`. The generator is xoshiro256++ seeded through splitmix64 —
//! not the upstream ChaCha12, so exact streams differ, but all tests in
//! this workspace assert statistical properties rather than exact draws.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Types with a uniform-over-an-interval sampler. The single blanket
/// `SampleRange` impl below hangs off this trait — mirroring upstream's
/// structure so type inference resolves `gen_range(1..=120)` from usage
/// context instead of demanding an annotated literal.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[low, high)` (or `[low, high]` when
    /// `inclusive`).
    ///
    /// # Panics
    /// Panics if the interval is empty.
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_interval(rng, low, high, true)
    }
}

/// Uniform integer in `[0, span)` without modulo bias worth caring about
/// (Lemire's multiply-shift; bias is < 2^-64 · span, negligible here).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty => $w:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                // Distances go through a 64-bit-wide intermediate so small
                // signed types don't sign-extend a wrapped difference.
                let span = (high as $w).wrapping_sub(low as $w) as u64;
                if inclusive {
                    assert!(low <= high, "cannot sample empty range");
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as $w).wrapping_add(uniform_below(rng, span + 1) as $w) as $t
                } else {
                    assert!(low < high, "cannot sample empty range");
                    (low as $w).wrapping_add(uniform_below(rng, span) as $w) as $t
                }
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        if inclusive {
            assert!(low <= high, "cannot sample empty range");
        } else {
            assert!(low < high, "cannot sample empty range");
        }
        low + f64::sample(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        if inclusive {
            assert!(low <= high, "cannot sample empty range");
        } else {
            assert!(low < high, "cannot sample empty range");
        }
        low + f32::sample(rng) * (high - low)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for upstream's ChaCha12-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_u64_state(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                *w = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_u64_state(state)
        }
    }

    /// Small fast generator; same engine as [`StdRng`] in this stand-in.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(StdRng);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(StdRng::from_seed(seed))
        }

        fn seed_from_u64(state: u64) -> Self {
            SmallRng(StdRng::from_u64_state(state))
        }
    }
}

/// A generator seeded from process entropy (address-space layout and a
/// monotonically bumped counter — good enough for non-cryptographic use).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let tick = COUNTER.fetch_add(1, Ordering::Relaxed);
    let addr = &COUNTER as *const _ as u64;
    rngs::StdRng::seed_from_u64(addr ^ tick.wrapping_mul(0x9E3779B97F4A7C15))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!StdRng::seed_from_u64(0).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(0).gen_bool(1.0));
    }

    #[test]
    fn exponential_style_usage_compiles() {
        fn draw(rng: &mut impl Rng) -> f64 {
            let u: f64 = rng.gen();
            -(1.0 - u).ln()
        }
        let mut rng = StdRng::seed_from_u64(11);
        assert!(draw(&mut rng) >= 0.0);
    }
}
