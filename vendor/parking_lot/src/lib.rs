//! Offline stand-in for `parking_lot`: wraps the std synchronization
//! primitives with parking_lot's API (no `Result` from `lock()`; poisoning
//! is transparently ignored, matching parking_lot's behaviour of not
//! poisoning at all).

use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never returns a
    /// poison error (a panicked holder does not poison parking_lot locks).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison std mutex");
        })
        .join();
        // parking_lot semantics: still lockable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
