//! Quickstart: pick the optimal materialization configuration for one
//! query on one cluster, and explain the decision.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ftpde::cluster::prelude::*;
use ftpde::core::prelude::*;
use ftpde::sim::prelude::*;
use ftpde::tpch::prelude::*;

fn main() {
    // 1. Build TPC-H Q5 at scale factor 100 with the calibrated cost
    //    model (≈ 15-minute baseline on 10 nodes, as in the paper).
    let cost_model = CostModel::xdb_calibrated();
    let plan = Query::Q5.plan(100.0, &cost_model);
    println!("Q5 @ SF 100: {} operators, {} free", plan.len(), plan.free_count());
    println!(
        "baseline runtime (no failures, no checkpoints): {:.0} s\n",
        ftpde::tpch::costing::baseline_runtime(&plan)
    );

    // 2. Describe the cluster: 10 nodes, each failing on average once an
    //    hour, 1 s to redeploy a failed sub-plan.
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let params = Scheme::cost_params(&cluster);

    // 3. Run the cost-based search (Listing 1 of the paper) with all
    //    pruning rules.
    let (best, stats) =
        find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::default())
            .expect("valid plan and parameters");

    println!("cost-based fault-tolerant plan:");
    for id in plan.op_ids() {
        let op = plan.op(id);
        let mark = if best.config.materializes(id) {
            "MATERIALIZE"
        } else if op.is_free() {
            "pipeline"
        } else {
            "(bound)"
        };
        println!("  {:<24} tr={:7.1}s tm={:7.1}s  {}", op.name, op.run_cost, op.mat_cost, mark);
    }
    println!(
        "\nestimated runtime under failures: {:.0} s (dominant path of {} collapsed ops)",
        best.estimate.dominant_cost,
        best.estimate.dominant_path.len()
    );
    println!(
        "search: {} of {} configurations enumerated, {} paths costed",
        stats.configs_enumerated, stats.configs_unpruned, stats.paths_costed
    );

    // 4. Validate the choice against the discrete-event simulator: replay
    //    the same failure traces under all four schemes.
    println!("\nsimulated overhead over 10 failure traces (MTBF = 1 h/node):");
    let horizon = suggested_horizon(&plan, &cluster, &SimOptions::default());
    let traces = TraceSet::generate(&cluster, horizon, 10, 42);
    for run in run_all_schemes(&plan, &cluster, &traces, &SimOptions::default()).unwrap() {
        match run.mean_overhead_pct() {
            Some(oh) => println!("  {:<18} {:6.1} %", run.scheme.name(), oh),
            None => println!("  {:<18} aborted", run.scheme.name()),
        }
    }
}
