//! Observability end-to-end: trace all three instrumented layers — the
//! cost-based search, the discrete-event simulator, and the real
//! execution engine under an injected node failure — then export the
//! engine's event log as JSONL and as a Chrome trace you can load in
//! `chrome://tracing` or https://ui.perfetto.dev.
//!
//! ```text
//! cargo run --example observability
//! ```

use ftpde::cluster::prelude::*;
use ftpde::core::prelude::*;
use ftpde::engine::prelude::*;
use ftpde::obs::{export, MemoryRecorder, MetricsRegistry};
use ftpde::sim::prelude::*;
use ftpde::tpch::datagen::Database;
use ftpde::tpch::prelude::*;

fn main() {
    // --- layer 1: the optimizer search, traced --------------------------
    let cost_model = CostModel::xdb_calibrated();
    let plan = Query::Q5.plan(100.0, &cost_model);
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let params = Scheme::cost_params(&cluster);
    let rec = MemoryRecorder::new();
    let (best, stats) = find_best_ft_plan_traced(
        std::slice::from_ref(&plan),
        &params,
        &PruneOptions::default(),
        &rec,
    )
    .expect("valid plan");
    println!("{}", explain_search_stats(&stats));
    println!(
        "search emitted {} events; best config materializes {} intermediate(s)\n",
        rec.events().len(),
        best.config.materialized_count()
    );

    // --- layer 2: the simulator, traced ---------------------------------
    let opts = SimOptions::default();
    let horizon = suggested_horizon(&plan, &cluster, &opts);
    let trace = FailureTrace::generate(&cluster, horizon, 2026);
    let sim_rec = MemoryRecorder::new();
    // Tag the trace with the cost model's own per-stage predictions so it
    // can be calibrated offline (`ftpde obs --trace ... --format calibration`).
    let breakdown = estimate_ft_plan(&plan, &best.config, &params).breakdown(&params);
    let r = simulate_traced(
        &plan,
        &best.config,
        Recovery::FineGrained,
        &cluster,
        &trace,
        &opts,
        Some(&breakdown),
        &sim_rec,
    );
    println!(
        "simulated Q5: completed {:.0} s, {} node retries, {:.0} s spent in recovery \
         ({} timeline events recorded)\n",
        r.completion,
        r.node_retries,
        r.recovery_seconds,
        sim_rec.events().len()
    );

    // --- layer 3: the real engine with an injected node kill ------------
    let engine_plan = q3_engine_plan();
    let dag = engine_plan.to_plan_dag();
    let config = MatConfig::from_free_bits(&dag, 0b01); // materialize the first join
    let sink = engine_plan.sinks()[0];
    let injector = FailureInjector::with([Injection { stage: sink.0, node: 1, attempt: 0 }]);
    let catalog = load_catalog(&Database::generate(0.001, 42), 4);
    let engine_rec = MemoryRecorder::new();
    let report = run_query_traced(
        &engine_plan,
        &config,
        &catalog,
        &injector,
        &RunOptions::default(),
        None,
        &engine_rec,
    );
    println!(
        "engine ran Q3 on 4 nodes, killed node 1 mid-stage: {} retry, results intact ({} rows)",
        report.node_retries,
        report.results[0].1.len()
    );

    // Fold the run into a metrics snapshot...
    let metrics = MetricsRegistry::new();
    metrics.counter_add("engine.node_retries", report.node_retries as u64);
    metrics.counter_add("search.configs_explored", stats.configs_explored);
    for t in &report.stage_timings {
        metrics.observe("engine.stage_seconds", t.wall_us as f64 / 1e6);
    }
    println!("metrics snapshot: {}", serde_json_snapshot(&metrics));

    // ...and export the engine timeline in both formats, plus the
    // prediction-tagged simulator timeline for offline calibration.
    let events = engine_rec.events();
    let dir = std::path::Path::new("target/obs");
    let jsonl = dir.join("engine_run.jsonl");
    let chrome = dir.join("engine_trace.json");
    let sim_jsonl = dir.join("sim_run.jsonl");
    export::write_file(&jsonl, &export::to_jsonl(&events)).expect("write JSONL");
    export::write_file(&chrome, &export::to_chrome_trace(&events)).expect("write trace");
    export::write_file(&sim_jsonl, &export::to_jsonl(&sim_rec.events())).expect("write sim JSONL");
    println!("\nwrote {} events:", events.len() + sim_rec.events().len());
    println!("  {}   (JSONL event log)", jsonl.display());
    println!("  {}   (Chrome trace — open in chrome://tracing or Perfetto)", chrome.display());
    println!(
        "  {}   (prediction-tagged sim trace — try `ftpde obs --trace {} --format calibration`)",
        sim_jsonl.display(),
        sim_jsonl.display()
    );
}

fn serde_json_snapshot(metrics: &MetricsRegistry) -> String {
    serde_json::to_string(&metrics.snapshot()).expect("snapshots always serialize")
}
