//! The paper's motivating scenario (§1): a mixed analytical workload with
//! runtimes from seconds to hours. No static fault-tolerance scheme fits
//! all of it — short interactive queries suffer under Hadoop-style
//! all-materialization, long batch queries die under restart-based
//! recovery — while the cost-based scheme finds each query's sweet spot.
//!
//! ```text
//! cargo run --example mixed_workload
//! ```

use ftpde::cluster::prelude::*;
use ftpde::sim::prelude::*;
use ftpde::tpch::prelude::*;

fn main() {
    let cost_model = CostModel::xdb_calibrated();
    let cluster = ClusterConfig::paper_cluster(mtbf::DAY);

    // The same query shape at very different data sizes: an interactive
    // drill-down (SF 1, seconds), a reporting query (SF 100, minutes) and
    // an overnight batch aggregation (SF 1000, hours).
    let workload =
        [("interactive (SF 1)", 1.0), ("reporting (SF 100)", 100.0), ("batch (SF 1000)", 1000.0)];

    println!(
        "{:<22} {:>9}  {:>11} {:>11} {:>11} {:>11}   chosen checkpoints",
        "query", "baseline", "all-mat", "lineage", "restart", "cost-based"
    );
    for (i, (label, sf)) in workload.into_iter().enumerate() {
        let plan = q5_plan(sf, &cost_model);
        let baseline = ftpde::tpch::costing::baseline_runtime(&plan);
        let horizon = suggested_horizon(&plan, &cluster, &SimOptions::default());
        let traces = TraceSet::generate(&cluster, horizon, 10, 7 + i as u64);
        let runs = run_all_schemes(&plan, &cluster, &traces, &SimOptions::default()).unwrap();

        let cells: Vec<String> = runs
            .iter()
            .map(|r| match r.mean_overhead_pct() {
                Some(oh) => format!("{oh:9.1} %"),
                None => "  aborted".to_string(),
            })
            .collect();
        let chosen = &runs[3].config; // cost-based
        let checkpoints: Vec<String> =
            chosen.materialized_ops().into_iter().map(|id| plan.op(id).name.clone()).collect();
        println!(
            "{:<22} {:>8.0}s  {} {} {} {}   {}",
            label,
            baseline,
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            if checkpoints.is_empty() { "(none)".to_string() } else { checkpoints.join(", ") }
        );
    }

    println!();
    println!("Reading the table:");
    println!(" * all-mat taxes the short query with materialization it never needs;");
    println!(" * restart-based recovery collapses as runtime approaches the cluster MTBF;");
    println!(" * the cost-based scheme adapts: no checkpoints while failures are unlikely,");
    println!("   checkpoints at the cheap intermediates once the query runs long enough.");
}
