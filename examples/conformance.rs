//! Conformance-gate driver: produce traced, failure-injected runs and a
//! small engine benchmark for CI to audit.
//!
//! The example writes
//!
//! * `target/obs/engine_q3_all_fine.jsonl` — TPC-H Q3 on the engine,
//!   everything materialized, fine-grained recovery, with injected
//!   worker failures on every stage's first attempts;
//! * `target/obs/engine_q1_none_coarse.jsonl` — Q1 with nothing
//!   materialized under coarse restart, one injected failure forcing a
//!   full query restart;
//! * `target/obs/sim_q1_{allmat,nomat_lineage,nomat_restart}.jsonl` —
//!   the simulator's three baseline schemes (§5.2) replaying a generated
//!   failure trace;
//! * `target/bench/BENCH_engine.json` — stage timings of the Q3 run plus
//!   checkpoint-store write/read throughput (MB/s), as a one-case
//!   document in the canonical `ftpde bench` suite schema
//!   (`ftpde_bench::suite::EngineDoc`), so the same tooling parses both
//!   this artifact and the committed repo baselines.
//!
//! CI replays every JSONL file through `ftpde check --trace`, so the
//! recovery protocol the traces exhibit is verified by the FT101…FT108
//! conformance passes — the example also runs the checker in-process and
//! exits nonzero if any trace fails, keeping it useful standalone.
//!
//! Run with `cargo run --release --example conformance`.

use ftpde::analysis::prelude::*;
use ftpde::cluster::prelude::*;
use ftpde::core::prelude::*;
use ftpde::engine::prelude::*;
use ftpde::obs::{export, Event, MemoryRecorder};
use ftpde::sim::prelude::*;
use ftpde::tpch::datagen::Database;
use ftpde::tpch::prelude::*;
use ftpde_bench::{store_micro, suite};

const NODES: usize = 3;

/// One recorded trace plus the stage plan to audit it against.
struct Traced {
    file: &'static str,
    events: Vec<Event>,
    stage_plan: StagePlan,
}

fn catalog() -> Catalog {
    load_catalog(&Database::generate(0.002, 7), NODES)
}

/// Q3, everything materialized, fine-grained recovery, injected worker
/// failures on first attempts of every collapsed stage.
fn engine_fine() -> (Traced, RunReport) {
    let plan = q3_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::all(&dag);
    let sp = StagePlan::engine_ids(&dag, &config, 1.0);
    let roots: Vec<u32> = sp.stages().iter().map(|s| s.id as u32).collect();
    let injector = FailureInjector::random_first_attempts(&roots, NODES, 0.5, 11);
    let rec = MemoryRecorder::new();
    let report =
        run_query_traced(&plan, &config, &catalog(), &injector, &RunOptions::default(), None, &rec);
    (Traced { file: "engine_q3_all_fine.jsonl", events: rec.events(), stage_plan: sp }, report)
}

/// Q1, nothing materialized, coarse restart: one injected failure aborts
/// the first query attempt, the second runs clean.
fn engine_coarse() -> Traced {
    let plan = q1_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::none(&dag);
    let sp = StagePlan::engine_ids(&dag, &config, 1.0);
    let first = sp.stages()[0].id as u32;
    let injector = FailureInjector::with([Injection { stage: first, node: 0, attempt: 0 }]);
    let opts = RunOptions {
        recovery: EngineRecovery::CoarseRestart,
        max_restarts: 10,
        ..Default::default()
    };
    let rec = MemoryRecorder::new();
    run_query_traced(&plan, &config, &catalog(), &injector, &opts, None, &rec);
    Traced { file: "engine_q1_none_coarse.jsonl", events: rec.events(), stage_plan: sp }
}

/// Q1 in the simulator under one baseline scheme against a generated
/// failure trace.
fn sim_baseline(scheme: Scheme, file: &'static str) -> Traced {
    let cluster = ClusterConfig::new(10, 600.0, 1.0);
    let plan = Query::Q1.plan(1.0, &CostModel::xdb_calibrated());
    let opts = SimOptions::default();
    let horizon = suggested_horizon(&plan, &cluster, &opts);
    let failures = FailureTrace::generate(&cluster, horizon, 7);
    let config = scheme.select_config(&plan, &cluster).expect("Q1 plan is valid");
    let rec = MemoryRecorder::new();
    simulate_traced(&plan, &config, scheme.recovery(), &cluster, &failures, &opts, None, &rec);
    let sp = StagePlan::sim_ids(&plan, &config, opts.pipe_const);
    Traced { file, events: rec.events(), stage_plan: sp }
}

/// Shapes the traced Q3 run as a one-case [`suite::EngineDoc`]: the same
/// schema the canonical `ftpde bench` suite writes, so `ftpde bench
/// --compare` and any other consumer of BENCH documents parses this
/// artifact too. A single traced run gives single-sample statistics;
/// `overhead_pct` is not measured here (the recorder was attached for
/// the whole run) and is reported as 0.
fn bench(events: &[Event], run: &RunReport) -> suite::EngineDoc {
    let wall_us = events
        .iter()
        .filter_map(|e| (e.name == "query_completed").then_some(e.ts_us))
        .max()
        .unwrap_or(0);
    // Executions of the same stage are summed per the suite convention
    // (the report's stage_timings is a timeline, not a per-stage map).
    let mut per_stage: std::collections::BTreeMap<u32, (f64, u64)> =
        std::collections::BTreeMap::new();
    for t in &run.stage_timings {
        let e = per_stage.entry(t.stage).or_insert((0.0, 0));
        e.0 += t.wall_us as f64;
        e.1 += t.retries;
    }
    let case = suite::EngineCase {
        query: "Q3".to_string(),
        config: "all".to_string(),
        backend: "mem".to_string(),
        failures: true,
        wall_us: suite::Stats::of(&[wall_us as f64]),
        stages: per_stage
            .into_iter()
            .map(|(stage, (wall, retries))| suite::StageStat {
                stage,
                wall_us: suite::Stats::of(&[wall]),
                retries: retries as f64,
            })
            .collect(),
        node_retries: run.node_retries as f64,
        query_restarts: f64::from(run.query_restarts),
        bytes_materialized: run.bytes_materialized as f64,
    };
    let store = store_micro::run()
        .into_iter()
        .map(|p| suite::StoreCase {
            backend: p.backend.to_string(),
            row_width: p.width,
            mb_written: p.bytes as f64 / 1e6,
            write_mb_per_s: p.write_bytes_per_s.map(|b| b / 1e6),
            read_mb_per_s: p.read_bytes_per_s.map(|b| b / 1e6),
        })
        .collect();
    suite::EngineDoc {
        schema_version: suite::SCHEMA_VERSION,
        suite: suite::ENGINE_SUITE.to_string(),
        seed: 7,
        repeats: 1,
        warmup: 0,
        nodes: NODES,
        sf: 0.002,
        host: suite::HostInfo::current(),
        overhead_pct: 0.0,
        cases: vec![case],
        store,
    }
}

fn main() {
    let obs_dir = std::path::Path::new("target/obs");
    let bench_dir = std::path::Path::new("target/bench");
    std::fs::create_dir_all(obs_dir).expect("create target/obs");
    std::fs::create_dir_all(bench_dir).expect("create target/bench");

    let (fine, fine_report) = engine_fine();
    let traces = vec![
        fine,
        engine_coarse(),
        sim_baseline(Scheme::AllMat, "sim_q1_allmat.jsonl"),
        sim_baseline(Scheme::NoMatLineage, "sim_q1_nomat_lineage.jsonl"),
        sim_baseline(Scheme::NoMatRestart, "sim_q1_nomat_restart.jsonl"),
    ];

    let mut dirty = 0usize;
    for t in &traces {
        let path = obs_dir.join(t.file);
        export::write_file(&path, &export::to_jsonl(&t.events)).expect("write trace");
        let report = check_trace(t.file, &t.events, Some(&t.stage_plan), &CheckOptions::default());
        if report.is_clean() {
            println!("{}: {} events, conformant", path.display(), t.events.len());
        } else {
            dirty += 1;
            print!("{}", report.render());
        }
    }

    let bench = bench(&traces[0].events, &fine_report);
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench");
    // The artifact must stay parseable by the suite tooling.
    suite::parse_doc(&json).expect("artifact parses as a BENCH document");
    let bench_path = bench_dir.join("BENCH_engine.json");
    std::fs::write(&bench_path, json).expect("write BENCH_engine.json");
    let case = &bench.cases[0];
    println!(
        "{}: wall {} us, {} stages, {} store points",
        bench_path.display(),
        case.wall_us.p50,
        case.stages.len(),
        bench.store.len()
    );

    assert_eq!(dirty, 0, "{dirty} trace(s) failed conformance");
}
