//! The Figure 1 scenario: the *same* query on four very different cluster
//! setups — from a large spot-instance fleet failing constantly to a small
//! reliable appliance. The advisor prints the success probability of a
//! single attempt, the configuration the cost-based optimizer picks, and
//! the estimated runtime under failures for each setup.
//!
//! ```text
//! cargo run --example cluster_advisor
//! ```

use ftpde::cluster::prelude::*;
use ftpde::core::prelude::*;
use ftpde::sim::prelude::*;
use ftpde::tpch::prelude::*;

fn main() {
    let cost_model = CostModel::xdb_calibrated();
    let plan = Query::Q5.plan(100.0, &cost_model);
    let baseline = ftpde::tpch::costing::baseline_runtime(&plan);
    println!(
        "query: TPC-H Q5 @ SF 100 — baseline {:.0} s ({:.1} min)\n",
        baseline,
        baseline / 60.0
    );

    for (label, cluster) in figure1_clusters() {
        // The optimizer models failures per executing node; Figure 1's
        // large setups simply run the query on more nodes.
        let p_success = success_probability(&cluster, baseline);
        let params = Scheme::cost_params(&cluster);
        let (best, _) =
            find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::default())
                .expect("valid plan");
        let checkpoints: Vec<String> =
            best.config.materialized_ops().into_iter().map(|id| plan.op(id).name.clone()).collect();
        println!("{label}");
        println!("  P(one attempt succeeds) = {:.1} %", p_success * 100.0);
        println!(
            "  cost-based choice: {}",
            if checkpoints.is_empty() {
                "pipeline everything".to_string()
            } else {
                format!("materialize {}", checkpoints.join(", "))
            }
        );
        println!(
            "  estimated runtime under failures: {:.0} s ({:+.1} % over baseline)\n",
            best.estimate.dominant_cost,
            (best.estimate.dominant_cost / baseline - 1.0) * 100.0
        );
    }

    println!("The sweet spot moves exactly as the paper's Figure 1 suggests: the");
    println!("lower the cluster's MTBF (and the larger the query), the more");
    println!("intermediates the cost-based scheme checkpoints.");
}
