//! End-to-end run of the real execution engine: generate TPC-H data,
//! shard it over worker threads, execute Q5 under injected node failures
//! with three recovery strategies, and verify every strategy produces the
//! identical result.
//!
//! ```text
//! cargo run --example engine_demo
//! ```

use ftpde::core::config::MatConfig;
use ftpde::engine::prelude::*;
use ftpde::tpch::datagen::Database;

fn main() {
    const NODES: usize = 4;
    let db = Database::generate(0.002, 42);
    println!(
        "generated TPC-H-like database @ SF 0.002: {} rows total ({} lineitems)",
        db.total_rows(),
        db.lineitem.len()
    );
    let catalog = load_catalog(&db, NODES);
    println!(
        "sharded over {NODES} worker nodes (lineitem/orders hash-partitioned, rest replicated)\n"
    );

    let plan = q5_engine_plan();
    let dag = plan.to_plan_dag();

    // Ground truth: failure-free run.
    let reference = run_query(
        &plan,
        &MatConfig::none(&dag),
        &catalog,
        &FailureInjector::none(),
        &RunOptions::default(),
    );
    let truth = &reference.results[0].1;
    println!("failure-free Q5 result ({} nations):", truth.len());
    for row in truth {
        println!("  nation {:>2}  revenue {}", row[0].as_int(), row[1].as_int());
    }

    // Now break things: kill several first attempts across all stages.
    let stage_roots: Vec<u32> = {
        let pc = ftpde::core::collapse::CollapsedPlan::collapse(
            &dag,
            &MatConfig::from_free_bits(&dag, 0b00101),
            1.0,
        );
        pc.iter().map(|(_, c)| c.root.0).collect()
    };
    let scenarios: [(&str, MatConfig, EngineRecovery); 3] = [
        ("all-mat + fine-grained", MatConfig::all(&dag), EngineRecovery::FineGrained),
        ("lineage (no-mat) + fine-grained", MatConfig::none(&dag), EngineRecovery::FineGrained),
        (
            "cost-based subset + fine-grained",
            MatConfig::from_free_bits(&dag, 0b00101),
            EngineRecovery::FineGrained,
        ),
    ];

    println!("\ninjecting node failures (p = 0.4 per stage × node, first attempts):");
    for (label, config, recovery) in scenarios {
        let injector = FailureInjector::random_first_attempts(&stage_roots, NODES, 0.4, 9);
        let report = run_query(
            &plan,
            &config,
            &catalog,
            &injector,
            &RunOptions { recovery, max_restarts: 100, ..Default::default() },
        );
        let ok = report.results[0].1 == *truth;
        println!(
            "  {:<34} retries={:<3} rows materialized={:<7} result {}",
            label,
            report.node_retries,
            report.rows_materialized,
            if ok { "IDENTICAL ✓" } else { "DIFFERS ✗" }
        );
        assert!(ok, "recovery must never change query results");
    }

    // Coarse restart for comparison.
    let sink = plan.sinks()[0];
    let injector = FailureInjector::with([Injection { stage: sink.0, node: 1, attempt: 0 }]);
    let report = run_query(
        &plan,
        &MatConfig::none(&dag),
        &catalog,
        &injector,
        &RunOptions {
            recovery: EngineRecovery::CoarseRestart,
            max_restarts: 100,
            ..Default::default()
        },
    );
    println!(
        "  {:<34} restarts={:<2} result {}",
        "restart (parallel-DB style)",
        report.query_restarts,
        if report.results[0].1 == *truth { "IDENTICAL ✓" } else { "DIFFERS ✗" }
    );
    assert_eq!(report.results[0].1, *truth);

    println!("\nevery recovery path reproduced the failure-free result bit-for-bit.");
}
