//! Cost-model calibration end-to-end: the cost-based search picks a
//! fault-tolerant plan, the simulator and the real engine run it under
//! injected failures with prediction-tagged traces, and the calibration
//! report prints the per-stage prediction error, aggregate quantiles and
//! the blame breakdown (runtime vs materialization vs recovery).
//!
//! ```text
//! cargo run --example calibration
//! ```

use ftpde::cluster::prelude::*;
use ftpde::core::prelude::*;
use ftpde::engine::prelude::*;
use ftpde::obs::{export, CalibrationReport, MemoryRecorder};
use ftpde::sim::prelude::*;
use ftpde::tpch::datagen::Database;
use ftpde::tpch::prelude::*;

fn main() {
    // --- 1. the search picks a plan, and the estimate it picked it by ---
    let cost_model = CostModel::xdb_calibrated();
    let plan = Query::Q5.plan(100.0, &cost_model);
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let params = Scheme::cost_params(&cluster);
    let (best, _) =
        find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::default())
            .expect("valid plan");
    // The per-stage Eq. 8 decomposition of exactly that winning estimate.
    let breakdown = best.estimate.breakdown(&params);
    println!(
        "search picked a config materializing {} intermediate(s); predicted T_Pt = {:.1} s",
        best.config.materialized_count(),
        breakdown.dominant_cost
    );

    // --- 2. the simulator replays it against a real failure trace -------
    let opts = SimOptions::default();
    let horizon = suggested_horizon(&plan, &cluster, &opts);
    let trace = FailureTrace::generate(&cluster, horizon, 7);
    let sim_rec = MemoryRecorder::new();
    let r = simulate_traced(
        &plan,
        &best.config,
        Recovery::FineGrained,
        &cluster,
        &trace,
        &opts,
        Some(&breakdown),
        &sim_rec,
    );
    println!(
        "simulated: completed {:.1} s ({} node retries, {:.1} s in recovery)",
        r.completion, r.node_retries, r.recovery_seconds
    );

    // --- 3. the engine runs a query with an injected node kill ----------
    let engine_plan = q3_engine_plan();
    let dag = engine_plan.to_plan_dag();
    let config = MatConfig::from_free_bits(&dag, 0b01);
    let engine_params = CostParams::new(600.0, 1.0);
    let engine_breakdown =
        estimate_ft_plan(&dag, &config, &engine_params).breakdown(&engine_params);
    let sink = engine_plan.sinks()[0];
    let injector = FailureInjector::with([Injection { stage: sink.0, node: 1, attempt: 0 }]);
    let catalog = load_catalog(&Database::generate(0.001, 42), 4);
    let engine_rec = MemoryRecorder::new();
    let report = run_query_traced(
        &engine_plan,
        &config,
        &catalog,
        &injector,
        &RunOptions::default(),
        Some(&engine_breakdown),
        &engine_rec,
    );
    println!("engine ran Q3, killed node 1 once: {} retry\n", report.node_retries);

    // --- 4. calibrate both traces: predicted vs observed ----------------
    let sim_cal = CalibrationReport::from_events(&sim_rec.events());
    sim_cal.to_summary().print();
    // The engine's observed side is wall-clock seconds of a tiny test
    // database while the predictions are cost-model units, so its report
    // mostly measures that unit gap — printed here to show the blame
    // attribution, not model quality.
    CalibrationReport::from_events(&engine_rec.events()).to_summary().print();

    // --- 5. leave the tagged trace on disk for the offline CLI ----------
    let path = std::path::Path::new("target/obs/calibration_run.jsonl");
    export::write_file(path, &export::to_jsonl(&sim_rec.events())).expect("write trace");
    println!("\nwrote {}", path.display());
    println!("replay it offline:  ftpde obs --trace {} --format calibration", path.display());
}
