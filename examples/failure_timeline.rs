//! Watch a query live through failures: simulate TPC-H Q5 on an
//! unreliable cluster with the cost-based configuration and print the full
//! recovery timeline — stage starts, node failures, redeployments and
//! completions — for both a fine-grained and a restart-based run on the
//! *same* failure trace.
//!
//! ```text
//! cargo run --example failure_timeline
//! ```

use ftpde::cluster::prelude::*;
use ftpde::core::prelude::*;
use ftpde::sim::prelude::*;
use ftpde::tpch::prelude::*;

fn main() {
    let cost_model = CostModel::xdb_calibrated();
    let plan = Query::Q5.plan(100.0, &cost_model);
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR / 2.0); // 30-minute MTBF
    let opts = SimOptions::default();
    let horizon = suggested_horizon(&plan, &cluster, &opts);
    let trace = FailureTrace::generate(&cluster, horizon, 2026);
    println!(
        "Q5 @ SF 100 (baseline {:.0} s) on 10 nodes with MTBF = 30 min/node",
        ftpde::tpch::costing::baseline_runtime(&plan)
    );
    println!("failure trace #{}: {} failures within the horizon\n", 2026, trace.total_failures());

    // The cost-based configuration for this cluster.
    let config = Scheme::CostBased.select_config(&plan, &cluster).expect("valid plan");
    let checkpoints: Vec<&str> =
        config.materialized_ops().into_iter().map(|id| plan.op(id).name.as_str()).collect();
    println!(
        "cost-based checkpoints: {}\n",
        if checkpoints.is_empty() { "(none)".into() } else { checkpoints.join(", ") }
    );

    println!("--- fine-grained recovery (cost-based config) ---");
    let mut log = SimLog::collecting();
    let r =
        simulate_logged(&plan, &config, Recovery::FineGrained, &cluster, &trace, &opts, &mut log);
    print!("{}", log.render());
    println!("=> completed in {:.0} s after {} node-level retries\n", r.completion, r.node_retries);

    println!("--- coarse restart (no-mat), same trace ---");
    let none = MatConfig::none(&plan);
    let mut log = SimLog::collecting();
    let r2 =
        simulate_logged(&plan, &none, Recovery::CoarseRestart, &cluster, &trace, &opts, &mut log);
    // The restart log can be long; show the first and last few events.
    let rendered = log.render();
    let lines: Vec<&str> = rendered.lines().collect();
    if lines.len() > 14 {
        for l in &lines[..7] {
            println!("{l}");
        }
        println!("  ... {} more events ...", lines.len() - 14);
        for l in &lines[lines.len() - 7..] {
            println!("{l}");
        }
    } else {
        print!("{rendered}");
    }
    if r2.aborted {
        println!("=> ABORTED after {} restarts", r2.restarts);
    } else {
        println!(
            "=> completed in {:.0} s after {} whole-query restarts",
            r2.completion, r2.restarts
        );
    }
    println!(
        "\nSame failures, same query: fine-grained recovery with cost-based \
         checkpoints finished {:.1}x sooner.",
        r2.completion / r.completion
    );
}
