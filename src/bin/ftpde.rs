//! `ftpde` — command-line what-if tool for cost-based fault tolerance.
//!
//! ```text
//! ftpde plan     --query Q5 --sf 100 --nodes 10 --mtbf 3600 [--mttr 1]
//! ftpde simulate --query Q5 --sf 100 --nodes 10 --mtbf 3600 [--traces 10] [--seed 42]
//! ftpde success  --runtime-min 30 --nodes 10 --mtbf 3600
//! ftpde dot      --query Q5 --sf 100 --mtbf 3600 > plan.dot
//! ftpde obs      --trace run.jsonl [--format summary|calibration|prom|json]
//! ftpde lint     --all | --query Q5 | --plan plan.json | --source [--root <dir>] [--format text|json]
//! ftpde explain  FT201
//! ftpde store    --inspect <dir> | --verify <dir> [--format text|json]
//! ftpde check    --trace run.jsonl|- [--query Q5 --config best] [--format text|json]
//! ftpde sim      --seed 42 | --seeds 0..64 [--shrink] [--bug serve-corrupt-data] [--bug-base tests/bug_base.jsonl]
//! ftpde sim      --replay-bug-base tests/bug_base.jsonl
//! ftpde bench    [--quick] [--repeats N] [--warmup N] [--seed N] [--out <dir>]
//! ftpde bench    --compare <old.json> <new.json> [--tolerance <pct>]
//! ftpde serve-metrics [--port N] [--store <dir>] [--flight-dir <dir>] [--budget-ms N] [--duration-s N]
//! ftpde top      [--addr host:port] [--interval-ms N] [--iterations N] [--no-clear]
//! ```
//!
//! * `plan` — run the cost-based search for a TPC-H query and explain the
//!   chosen materialization configuration.
//! * `simulate` — replay failure traces under all four fault-tolerance
//!   schemes and report overheads.
//! * `success` — probability that a query of the given runtime finishes
//!   without any mid-query failure (the paper's Figure 1 formula).
//! * `dot` — emit the chosen fault-tolerant plan as Graphviz DOT (stages
//!   as dashed clusters, checkpoints highlighted).
//! * `obs` — replay a recorded JSONL trace offline and print a trace
//!   summary, a predicted-vs-observed calibration report, Prometheus
//!   text-format metrics, or the calibration report as JSON.
//! * `lint` — run the static-analysis passes (`FT001`…) of
//!   `ftpde-analysis` over the built-in plans, one TPC-H query, or an
//!   arbitrary serialized plan; or, with `--source`, run the
//!   source-discipline analyzer (`FT201`…`FT207`) over the workspace's
//!   own Rust sources. Exits nonzero on any Error-severity diagnostic,
//!   so both modes can gate CI.
//! * `explain` — print the long-form explanation of one diagnostic code
//!   (`ftpde explain FT201`), from the same registry that defines every
//!   code's default severity.
//! * `store` — inspect a durable checkpoint-store directory (`--inspect`
//!   prints the manifest: segments, sizes, checksums, throughput stats)
//!   or re-checksum every committed segment (`--verify`), exiting nonzero
//!   on corruption.
//! * `check` — replay a recorded JSONL trace through the
//!   trace-conformance verifier (`FT101`…`FT108`): span/track discipline,
//!   stage ordering, the recovery contract (re-execution only after a
//!   rewind or corruption, materialized stages skipped on retry), store
//!   lifecycle and Eq. 1 cost conservation. With `--query` (and
//!   optionally `--config`) the trace is verified against the collapsed
//!   plan it claims to execute; exits nonzero on any FT1xx Error.
//!   `--trace -` reads the event log from stdin.
//! * `sim` — the deterministic whole-system simulation harness: each
//!   seed derives a workload (query/SF/nodes/MTBF/materialization/
//!   recovery scheme) plus a fault schedule (node kills, torn/lost/
//!   corrupt/delayed storage), runs it on the real engine under virtual
//!   time, and judges the run with the FT0xx linter, the FT1xx trace
//!   checker, and the FT30x harness oracles (replay determinism, result
//!   divergence, panics, unfired schedules). `--shrink` minimizes each
//!   failing seed to a 1-minimal schedule; `--bug-base` records the
//!   reproductions; `--replay-bug-base` re-judges a committed base.
//! * `bench` — run the canonical benchmark suite (Q1/Q3/Q5 × {none,
//!   best, all} materialization × mem/disk store backends × clean and
//!   failure-injected runs, plus the optimizer search with pruning on
//!   and off) and write versioned `BENCH_engine.json` /
//!   `BENCH_search.json` documents; or, with `--compare`, diff two such
//!   documents under a tolerance and exit nonzero on any perf
//!   regression — the CI perf gate.
//! * `serve-metrics` — run the embedded HTTP telemetry server
//!   (`/metrics`, `/healthz`, `/flight`, `/queries`) against the
//!   process-global metrics registry, flight recorder and per-query
//!   progress tracker. `--store <dir>` wires a disk-store verify into
//!   `/healthz`; `--flight-dir` / `--budget-ms` configure where the
//!   flight recorder dumps on anomalies and its latency budget.
//! * `top` — a terminal dashboard polling a telemetry endpoint: live
//!   query table (stages, retries, restarts, bytes materialized,
//!   predicted-vs-elapsed drift), store throughput gauges, flight
//!   recorder status and recent anomalies.

use std::collections::HashMap;
use std::process::ExitCode;

use ftpde::analysis::prelude::*;
use ftpde::bench::suite;
use ftpde::cluster::prelude::*;
use ftpde::core::prelude::*;
use ftpde::obs;
use ftpde::sim::prelude::*;
use ftpde::tpch::prelude::*;

/// CLI result type (the core prelude shadows `std::result::Result`'s
/// two-parameter form with its own alias).
type CliResult<T> = std::result::Result<T, String>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `bench --compare <old> <new>` takes two positional paths, which the
    // uniform `--flag value` grammar cannot express — dispatch it on the
    // raw arguments.
    let result = if args.first().map(String::as_str) == Some("bench") {
        cmd_bench(&args[1..])
    } else if args.first().map(String::as_str) == Some("explain") {
        // `explain FT201` takes a positional code, which the uniform
        // `--flag value` grammar cannot express.
        cmd_explain(&args[1..])
    } else {
        let Some((cmd, flags)) = parse(&args) else {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        };
        match cmd.as_str() {
            "plan" => cmd_plan(&flags),
            "simulate" => cmd_simulate(&flags),
            "success" => cmd_success(&flags),
            "dot" => cmd_dot(&flags),
            "obs" => cmd_obs(&flags),
            "lint" => cmd_lint(&flags),
            "store" => cmd_store(&flags),
            "check" => cmd_check(&flags),
            "sim" => cmd_sim(&flags),
            "serve-metrics" => cmd_serve_metrics(&flags),
            "top" => cmd_top(&flags),
            _ => Err(format!("unknown command {cmd:?}")),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ftpde plan     --query <Q1|Q3|Q5|Q1C|Q2C> --sf <N> --nodes <N> --mtbf <secs> [--mttr <secs>]
  ftpde simulate --query <Q1|Q3|Q5|Q1C|Q2C> --sf <N> --nodes <N> --mtbf <secs> [--mttr <secs>] [--traces <N>] [--seed <N>]
  ftpde success  --runtime-min <N> --nodes <N> --mtbf <secs>
  ftpde dot      --query <Q1|Q3|Q5|Q1C|Q2C> --sf <N> --nodes <N> --mtbf <secs>
  ftpde obs      --trace <run.jsonl> [--format <summary|calibration|prom|json>]
  ftpde lint     --all | --query <Q1|Q3|Q5|Q1C|Q2C> | --plan <plan.json> | --source
                 [--sf <N>] [--nodes <N>] [--mtbf <secs>] [--mttr <secs>]
                 [--format <text|json|sarif>] [--root <dir>] [--emit-lock-graph [<dir>]]
  ftpde explain  <FT001..FT304> | --list   (e.g. `ftpde explain FT301`)
  ftpde store    --inspect <dir> | --verify <dir> [--format <text|json>]
  ftpde check    --trace <run.jsonl|-> [--query <Q1|Q3|Q5|Q1C|Q2C>] [--config <none|all|best|ops:<csv>>]
                 [--sf <N>] [--nodes <N>] [--mtbf <secs>] [--mttr <secs>] [--format <text|json>]
  ftpde sim      --seed <N> | --seeds <A..B> [--shrink] [--bug <none|serve-corrupt-data>]
                 [--bug-base <file.jsonl>] [--format <text|json>]
  ftpde sim      --replay-bug-base <file.jsonl> [--format <text|json>]
  ftpde bench    [--quick] [--repeats <N>] [--warmup <N>] [--seed <N>] [--out <dir>]
  ftpde bench    --compare <old.json> <new.json> [--tolerance <pct>]
  ftpde serve-metrics [--port <N>] [--store <dir>] [--flight-dir <dir>] [--budget-ms <N>] [--duration-s <N>]
  ftpde top      [--addr <host:port>] [--interval-ms <N>] [--iterations <N>] [--no-clear]";

/// Splits `["cmd", "--k", "v", ...]` into the command and a flag map.
/// A flag followed by another flag (or nothing) is boolean, stored as
/// `"true"` — that is how `lint --all` parses.
fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let (cmd, rest) = args.split_first()?;
    let mut flags = HashMap::new();
    let mut it = rest.iter().peekable();
    while let Some(k) = it.next() {
        let k = k.strip_prefix("--")?;
        let v = match it.peek() {
            Some(next) if !next.starts_with("--") => it.next()?.clone(),
            _ => "true".to_string(),
        };
        flags.insert(k.to_string(), v);
    }
    Some((cmd.clone(), flags))
}

fn get_f64(flags: &HashMap<String, String>, key: &str, default: Option<f64>) -> CliResult<f64> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key}: not a number: {v:?}")),
        None => default.ok_or_else(|| format!("missing required flag --{key}")),
    }
}

fn get_query(flags: &HashMap<String, String>) -> CliResult<Query> {
    let name = flags.get("query").ok_or("missing required flag --query")?;
    Query::ALL
        .into_iter()
        .find(|q| q.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown query {name:?} (expected Q1, Q3, Q5, Q1C or Q2C)"))
}

/// Resolves the shared `--format` flag against a subcommand's accepted
/// renderings — the one parser behind `obs`, `lint`, `store` and `check`.
fn get_format<'a>(
    flags: &'a HashMap<String, String>,
    allowed: &[&str],
    default: &'a str,
) -> CliResult<&'a str> {
    let format = flags.get("format").map_or(default, String::as_str);
    if allowed.contains(&format) {
        Ok(format)
    } else {
        Err(format!("unknown format {format:?} (expected {})", allowed.join(", ")))
    }
}

fn get_cluster(flags: &HashMap<String, String>) -> CliResult<ClusterConfig> {
    let nodes = get_f64(flags, "nodes", Some(10.0))? as usize;
    let mtbf = get_f64(flags, "mtbf", None)?;
    let mttr = get_f64(flags, "mttr", Some(1.0))?;
    if nodes == 0 || mtbf <= 0.0 || mttr < 0.0 {
        return Err("nodes must be ≥ 1, mtbf > 0, mttr ≥ 0".into());
    }
    Ok(ClusterConfig::new(nodes, mtbf, mttr))
}

fn cmd_plan(flags: &HashMap<String, String>) -> CliResult<()> {
    let query = get_query(flags)?;
    let sf = get_f64(flags, "sf", Some(100.0))?;
    let cluster = get_cluster(flags)?;
    let cm = CostModel::xdb_calibrated();
    let plan = query.plan(sf, &cm);
    let params = Scheme::cost_params(&cluster);
    let (best, stats) =
        find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::default())
            .map_err(|e| e.to_string())?;

    println!(
        "{query} @ SF {sf} on {} nodes (MTBF {:.0}s, MTTR {:.0}s)",
        cluster.nodes, cluster.mtbf, cluster.mttr
    );
    println!(
        "baseline {:.1}s | estimated under failures {:.1}s\n",
        ftpde::tpch::costing::baseline_runtime(&plan),
        best.estimate.dominant_cost
    );
    print!("{}", explain_plan(&plan, &best.config));
    println!();
    print!("{}", explain_estimate(&plan, &best.estimate, &params));
    println!(
        "\nsearch: {}/{} configurations, {} paths costed, rule3 stops: {}",
        stats.configs_enumerated,
        stats.configs_unpruned,
        stats.paths_costed,
        stats.rule3_stops()
    );
    Ok(())
}

fn cmd_simulate(flags: &HashMap<String, String>) -> CliResult<()> {
    let query = get_query(flags)?;
    let sf = get_f64(flags, "sf", Some(100.0))?;
    let cluster = get_cluster(flags)?;
    let traces_n = get_f64(flags, "traces", Some(10.0))? as usize;
    let seed = get_f64(flags, "seed", Some(42.0))? as u64;
    let cm = CostModel::xdb_calibrated();
    let plan = query.plan(sf, &cm);
    let opts = SimOptions::default();
    let horizon = suggested_horizon(&plan, &cluster, &opts);
    let traces = TraceSet::generate(&cluster, horizon, traces_n, seed);
    let baseline = ftpde::tpch::costing::baseline_runtime(&plan);
    println!(
        "{query} @ SF {sf}: baseline {:.1}s, {} traces, MTBF {:.0}s/node\n",
        baseline, traces_n, cluster.mtbf
    );
    println!("{:<18} {:>12} {:>14} {:>10}", "scheme", "overhead", "completion", "checkpoints");
    for run in run_all_schemes(&plan, &cluster, &traces, &opts).map_err(|e| e.to_string())? {
        let (oh, comp) = match (run.mean_overhead_pct(), run.mean_completion()) {
            (Some(o), Some(c)) => (format!("{o:.1} %"), format!("{c:.1} s")),
            _ => ("aborted".into(), "-".into()),
        };
        println!(
            "{:<18} {:>12} {:>14} {:>10}",
            run.scheme.name(),
            oh,
            comp,
            run.config.materialized_count()
        );
    }
    Ok(())
}

fn cmd_success(flags: &HashMap<String, String>) -> CliResult<()> {
    let runtime_min = get_f64(flags, "runtime-min", None)?;
    let cluster = get_cluster(flags)?;
    let p = success_probability(&cluster, runtime_min * 60.0);
    println!(
        "P(no failure during a {runtime_min:.1}-minute query on {} nodes, MTBF {:.0}s/node) = {:.2} %",
        cluster.nodes,
        cluster.mtbf,
        p * 100.0
    );
    println!(
        "expected failures during the query: {:.2}",
        expected_failures(&cluster, runtime_min * 60.0)
    );
    Ok(())
}

fn cmd_dot(flags: &HashMap<String, String>) -> CliResult<()> {
    let query = get_query(flags)?;
    let sf = get_f64(flags, "sf", Some(100.0))?;
    let cluster = get_cluster(flags)?;
    let cm = CostModel::xdb_calibrated();
    let plan = query.plan(sf, &cm);
    let params = Scheme::cost_params(&cluster);
    let (best, _) =
        find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::default())
            .map_err(|e| e.to_string())?;
    print!("{}", to_dot(&plan, &best.config, &best.estimate.collapsed));
    Ok(())
}

/// Folds a recorded trace into a metrics registry: per-category event
/// counters, span-duration histograms, and failure counters.
fn trace_registry(events: &[obs::Event]) -> obs::MetricsRegistry {
    let reg = obs::MetricsRegistry::new();
    for e in events {
        reg.counter_add(&format!("trace.events.{}", e.cat), 1);
        match e.phase {
            obs::Phase::Span => {
                reg.observe(&format!("trace.span_seconds.{}", e.cat), e.dur_us as f64 / 1e6);
            }
            obs::Phase::Instant => {
                if e.name == "node_failure" {
                    reg.counter_add(&format!("trace.failures.{}", e.cat), 1);
                } else if e.name == "store_stats" {
                    fold_store_stats(&reg, e);
                }
            }
        }
    }
    reg
}

/// Folds an engine `store_stats` instant into the registry under the
/// same `store.*` names `StoreStats::export_metrics` uses, so
/// `--format prom` serves storage throughput from a replayed trace.
/// The event carries the backend's *cumulative* counters, so every field
/// is exposed as a gauge and later instants supersede earlier ones.
fn fold_store_stats(reg: &obs::MetricsRegistry, e: &obs::Event) {
    let num = |key: &str| match e.get_arg(key) {
        Some(obs::ArgValue::U64(v)) => Some(*v as f64),
        Some(obs::ArgValue::I64(v)) => Some(*v as f64),
        Some(obs::ArgValue::F64(v)) => Some(*v),
        _ => None,
    };
    for (arg, gauge) in [
        ("logical_rows_written", "store.logical_rows_written"),
        ("physical_rows_written", "store.physical_rows_written"),
        ("physical_bytes_written", "store.physical_bytes_written"),
        ("bytes_read", "store.bytes_read"),
        ("fsyncs", "store.fsyncs"),
        ("segments_committed", "store.segments_committed"),
        ("corrupt_segments", "store.corrupt_segments"),
        ("write_bytes_per_s", "store.write_bytes_per_s"),
        ("read_bytes_per_s", "store.read_bytes_per_s"),
    ] {
        if let Some(v) = num(arg) {
            reg.gauge_set(gauge, v);
        }
    }
    if let Some(v) = num("write_bytes_per_s") {
        reg.observe("store.write_throughput_bytes_per_s", v);
    }
}

/// Renders a replayed trace in the requested format.
fn render_obs(events: &[obs::Event], format: &str) -> CliResult<String> {
    let calibration = || obs::CalibrationReport::from_events(events);
    match format {
        "summary" => {
            let mut head = obs::Summary::new();
            head.banner("Trace summary");
            head.kv("events", events.len());
            let spans = events.iter().filter(|e| e.phase == obs::Phase::Span).count();
            head.kv("spans", spans);
            head.kv("instants", events.len() - spans);
            if let Some(end) = events.iter().map(|e| e.ts_us + e.dur_us).max() {
                head.kv("trace end", format!("{:.3} s", end as f64 / 1e6));
            }
            let report = calibration();
            if !report.stages.is_empty() {
                head.kv(
                    "prediction-tagged stages",
                    format!("{} (see --format calibration)", report.stages.len()),
                );
            }
            Ok(format!(
                "{}{}",
                head.render(),
                obs::metrics_summary(&trace_registry(events).snapshot()).render()
            ))
        }
        "calibration" => Ok(calibration().to_summary().render()),
        "prom" => {
            let reg = trace_registry(events);
            calibration().export_metrics(&reg);
            Ok(obs::export::to_prometheus(&reg.snapshot()))
        }
        "json" => serde_json::to_string(&calibration())
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| format!("calibration report failed to serialize: {e:?}")),
        other => {
            Err(format!("unknown format {other:?} (expected summary, calibration, prom or json)"))
        }
    }
}

fn cmd_obs(flags: &HashMap<String, String>) -> CliResult<()> {
    let path = flags.get("trace").ok_or("missing required flag --trace")?;
    let format = get_format(flags, &["summary", "calibration", "prom", "json"], "summary")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events = obs::export::from_jsonl(&text)
        .map_err(|e| format!("{path} is not a JSONL event log: {e:?}"))?;
    print!("{}", render_obs(&events, format)?);
    Ok(())
}

/// Lints one plan: static passes first, and only when those find no
/// Error does it run the search and lint the resulting fault-tolerant
/// plan (searching a structurally broken plan could panic).
fn lint_searched(validator: &PlanValidator, subject: &str, plan: &PlanDag) -> CliResult<Report> {
    let static_report = validator.validate_plan(subject, plan);
    if !static_report.is_clean() {
        return Ok(static_report);
    }
    let (best, _) =
        find_best_ft_plan(std::slice::from_ref(plan), validator.params(), &PruneOptions::default())
            .map_err(|e| e.to_string())?;
    Ok(validator.validate_ft_plan(subject, &best.plan, &best.config))
}

/// `ftpde lint --source`: the source-discipline scan (`FT201`…`FT207`)
/// over a workspace checkout — text renders the per-code rollup plus
/// every Warn/Error finding, json emits the full `ReportSet` (the CI
/// artifact). Exits nonzero iff any Error-severity finding survives its
/// suppressions.
fn cmd_lint_source(flags: &HashMap<String, String>) -> CliResult<()> {
    let format = get_format(flags, &["text", "json", "sarif"], "text")?;
    let root = match flags.get("root") {
        Some(dir) if dir != "true" => std::path::PathBuf::from(dir),
        Some(_) => return Err("lint --root needs a directory argument".into()),
        None => std::env::current_dir().map_err(|e| format!("cannot resolve cwd: {e}"))?,
    };
    if !root.join("Cargo.toml").exists() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml); use --root",
            root.display()
        ));
    }
    let scan =
        lint_workspace(&root).map_err(|e| format!("scan of {} failed: {e}", root.display()))?;
    if let Some(dir) = flags.get("emit-lock-graph") {
        let dir = if dir == "true" {
            root.join("target").join("lint")
        } else {
            std::path::PathBuf::from(dir)
        };
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        for (name, body) in [
            ("lock-graph.dot", scan.lock_graph.to_dot()),
            ("lock-graph.json", scan.lock_graph.to_json()),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, body)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        eprintln!(
            "lock graph ({} lock(s), {} edge(s)) written to {}",
            scan.lock_graph.nodes().len(),
            scan.lock_graph.edges.len(),
            dir.display()
        );
    }
    if format == "text" {
        print!("{}", scan.render());
    } else {
        render_report_set(&scan.set, format)?;
    }
    if scan.is_clean() {
        Ok(())
    } else {
        Err(format!("source lint found {} error(s)", scan.set.count(Severity::Error)))
    }
}

/// `ftpde explain FT###`: prints the long-form explanation of one
/// diagnostic code from the unified registry, `rustc --explain` style.
/// `ftpde explain --list` prints the whole registry as a
/// severity-sorted table.
fn cmd_explain(args: &[String]) -> CliResult<()> {
    if args == ["--list"] {
        print!("{}", ftpde::analysis::codes::registry_table());
        return Ok(());
    }
    let [name] = args else {
        return Err("explain takes exactly one code (or --list), e.g. `ftpde explain FT201`".into());
    };
    let Some(code) = ftpde::analysis::codes::parse(name) else {
        let known: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        return Err(format!("unknown code {name:?} (known: {})", known.join(", ")));
    };
    print!("{}", ftpde::analysis::codes::explain(code));
    Ok(())
}

fn cmd_lint(flags: &HashMap<String, String>) -> CliResult<()> {
    if flags.contains_key("source") {
        return cmd_lint_source(flags);
    }
    // Lint doesn't require --mtbf: default to the paper's 1-hour cluster.
    let mut cluster_flags = flags.clone();
    cluster_flags.entry("mtbf".to_string()).or_insert_with(|| "3600".to_string());
    let cluster = get_cluster(&cluster_flags)?;
    let params = Scheme::cost_params(&cluster);
    let sf = get_f64(flags, "sf", Some(100.0))?;
    let format = get_format(flags, &["text", "json", "sarif"], "text")?;
    let validator = PlanValidator::new(params);
    let cm = CostModel::xdb_calibrated();

    let mut reports = Vec::new();
    if flags.contains_key("all") {
        reports.push(lint_searched(&validator, "figure2", &ftpde::core::dag::figure2_plan())?);
        for query in Query::ALL {
            let subject = format!("{query} @ SF {sf}");
            reports.push(lint_searched(&validator, &subject, &query.plan(sf, &cm))?);
        }
    } else if flags.contains_key("query") {
        let query = get_query(flags)?;
        let subject = format!("{query} @ SF {sf}");
        reports.push(lint_searched(&validator, &subject, &query.plan(sf, &cm))?);
    } else if let Some(path) = flags.get("plan") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let plan: PlanDag = serde_json::from_str(&text)
            .map_err(|e| format!("{path} is not a serialized plan: {e:?}"))?;
        reports.push(lint_searched(&validator, path, &plan)?);
    } else {
        return Err("lint needs one of --all, --query or --plan".into());
    }

    let set = ReportSet::new(reports);
    render_report_set(&set, format)?;
    if set.is_clean() {
        Ok(())
    } else {
        Err(format!("lint found {} error(s)", set.count(Severity::Error)))
    }
}

/// Renders a diagnostic report set in the shared `text`/`json`/`sarif`
/// formats (`lint` and `check` both exit through here).
fn render_report_set(set: &ReportSet, format: &str) -> CliResult<()> {
    if format == "json" {
        let json =
            serde_json::to_string(set).map_err(|e| format!("report failed to serialize: {e:?}"))?;
        println!("{json}");
    } else if format == "sarif" {
        println!("{}", ftpde::analysis::sarif::to_sarif_string(set));
    } else {
        print!("{}", set.render());
    }
    Ok(())
}

fn cmd_store(flags: &HashMap<String, String>) -> CliResult<()> {
    let format = get_format(flags, &["text", "json"], "text")?;
    let (dir, check) = if let Some(d) = flags.get("verify") {
        (d, true)
    } else if let Some(d) = flags.get("inspect") {
        (d, false)
    } else {
        return Err("store needs one of --inspect <dir> or --verify <dir>".into());
    };
    if dir == "true" {
        return Err("store --inspect/--verify need a directory argument".into());
    }
    let report = if check { ftpde::store::verify(dir) } else { ftpde::store::inspect(dir) }
        .map_err(|e| format!("cannot read store at {dir}: {e}"))?;
    if format == "json" {
        let json = serde_json::to_string(&report)
            .map_err(|e| format!("report failed to serialize: {e:?}"))?;
        println!("{json}");
    } else {
        print!("{}", report.to_summary().render());
    }
    if check && report.corrupt > 0 {
        return Err(format!("store verification failed: {} corrupt segment(s)", report.corrupt));
    }
    Ok(())
}

/// The engine-side plan mirror of a query: real topology, unit costs.
/// Collapsing it yields the same stage boundaries the coordinator runs,
/// which is all the conformance checker needs from an engine trace.
fn engine_plan_dag(query: Query) -> PlanDag {
    use ftpde::engine::prelude::{
        q1_engine_plan, q1c_engine_plan, q2c_engine_plan, q3_engine_plan, q5_engine_plan,
    };
    match query {
        Query::Q1 => q1_engine_plan(),
        Query::Q3 => q3_engine_plan(),
        Query::Q5 => q5_engine_plan(),
        Query::Q1C => q1c_engine_plan(),
        Query::Q2C => q2c_engine_plan(),
    }
    .to_plan_dag()
}

/// Resolves the `check --config` flag into a materialization
/// configuration over `plan`: `none`, `all`, `best` (run the cost-based
/// search under the cluster's failure parameters) or `ops:<csv>` (an
/// explicit list of materialized operator ids).
fn get_mat_config(spec: &str, plan: &PlanDag, cluster: &ClusterConfig) -> CliResult<MatConfig> {
    match spec {
        "none" => Ok(MatConfig::none(plan)),
        "all" => Ok(MatConfig::all(plan)),
        "best" => {
            let params = Scheme::cost_params(cluster);
            let (best, _) =
                find_best_ft_plan(std::slice::from_ref(plan), &params, &PruneOptions::default())
                    .map_err(|e| e.to_string())?;
            Ok(best.config)
        }
        other => {
            let csv = other.strip_prefix("ops:").ok_or_else(|| {
                format!("unknown config {other:?} (expected none, all, best or ops:<csv>)")
            })?;
            let ids = csv
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| {
                    let s = s.trim();
                    s.parse::<u32>()
                        .map(OpId)
                        .map_err(|_| format!("--config ops: not an operator id: {s:?}"))
                })
                .collect::<CliResult<Vec<OpId>>>()?;
            MatConfig::from_materialized_free_ops(plan, &ids).map_err(|e| e.to_string())
        }
    }
}

fn cmd_check(flags: &HashMap<String, String>) -> CliResult<()> {
    let path = flags.get("trace").ok_or("missing required flag --trace")?;
    let format = get_format(flags, &["text", "json"], "text")?;
    // `--trace -` reads the event log from stdin, so a recorder (or
    // `ftpde sim`) can pipe straight into the checker.
    let (name, text) = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("cannot read stdin: {e}"))?;
        ("<stdin>".to_string(), buf)
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        (path.clone(), text)
    };
    let path = &name;
    let events = obs::export::from_jsonl(&text)
        .map_err(|e| format!("{path} is not a JSONL event log: {e:?}"))?;

    // Without --query the trace is checked standalone (well-formedness,
    // track discipline, recovery justification). With it the collapsed
    // plan is rebuilt — against the engine-plan mirror when the trace
    // came from the engine, against the TPC-H cost-model plan when it
    // came from the simulator — so stage identity, ordering, skip
    // legitimacy and Eq. 1 conservation are verified too.
    let stage_plan = if flags.contains_key("query") {
        let query = get_query(flags)?;
        // Like lint, default to the paper's 1-hour cluster.
        let mut cluster_flags = flags.clone();
        cluster_flags.entry("mtbf".to_string()).or_insert_with(|| "3600".to_string());
        let cluster = get_cluster(&cluster_flags)?;
        let pipe_const = Scheme::cost_params(&cluster).pipe_const;
        let spec = flags.get("config").map_or("best", String::as_str);
        let is_engine = events.iter().any(|e| e.cat == "engine");
        let plan = if is_engine {
            engine_plan_dag(query)
        } else {
            let sf = get_f64(flags, "sf", Some(100.0))?;
            query.plan(sf, &CostModel::xdb_calibrated())
        };
        let config = get_mat_config(spec, &plan, &cluster)?;
        Some(if is_engine {
            StagePlan::engine_ids(&plan, &config, pipe_const)
        } else {
            StagePlan::sim_ids(&plan, &config, pipe_const)
        })
    } else {
        None
    };

    let report = check_trace(path, &events, stage_plan.as_ref(), &CheckOptions::default());
    let set = ReportSet::new(vec![report]);
    render_report_set(&set, format)?;
    if set.is_clean() {
        Ok(())
    } else {
        Err(format!("check found {} error(s)", set.count(Severity::Error)))
    }
}

/// The JSON document `ftpde sim --format json` emits — the CI sim-smoke
/// artifact: every outcome in full plus the shrunk reproductions.
#[derive(serde::Serialize)]
struct SimDoc {
    /// Document identifier for downstream tooling.
    schema: String,
    /// Seeds swept.
    seeds: Vec<u64>,
    /// How many seeds produced an Error-severity finding.
    failing: u64,
    /// Per-seed verdicts, in sweep order.
    outcomes: Vec<ftpde::simharness::runner::CaseOutcome>,
    /// Minimized reproductions of the failing seeds (`--shrink` only).
    shrunk: Vec<ftpde::simharness::shrink::Shrunk>,
}

/// Parses `--seeds A..B` (half-open, like a Rust range literal).
fn parse_seed_range(spec: &str) -> CliResult<std::ops::Range<u64>> {
    let (a, b) =
        spec.split_once("..").ok_or_else(|| format!("--seeds: expected A..B, got {spec:?}"))?;
    let start: u64 = a.trim().parse().map_err(|_| format!("--seeds: not a number: {a:?}"))?;
    let end: u64 = b.trim().parse().map_err(|_| format!("--seeds: not a number: {b:?}"))?;
    if end <= start {
        return Err(format!("--seeds: empty range {spec:?}"));
    }
    Ok(start..end)
}

/// Appends `entries` to the bug base at `path`, creating the file (with
/// its schema header) when missing and skipping entries whose
/// `(seed, code)` is already recorded. Returns how many were added.
fn append_bug_entries(
    path: &str,
    entries: Vec<ftpde::simharness::bugbase::BugEntry>,
) -> CliResult<usize> {
    use ftpde::simharness::bugbase::BugBase;
    let mut base = if std::path::Path::new(path).exists() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BugBase::parse(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        BugBase::default()
    };
    let mut added = 0;
    for entry in entries {
        if base.entries.iter().any(|e| e.seed == entry.seed && e.code == entry.code) {
            continue;
        }
        base.entries.push(entry);
        added += 1;
    }
    std::fs::write(path, base.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(added)
}

/// Replays a committed bug base and reports each entry's judgement.
fn sim_replay_bug_base(path: &str, format: &str) -> CliResult<()> {
    use ftpde::simharness::bugbase::BugBase;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let base = BugBase::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let results = base.replay();
    if format == "json" {
        let json = serde_json::to_string(&results)
            .map_err(|e| format!("replay results failed to serialize: {e:?}"))?;
        println!("{json}");
    } else {
        for r in &results {
            let verdict = if r.ok { "ok" } else { "FAIL" };
            println!("seed {:>4} [{}] {verdict}: {}", r.seed, r.code, r.detail);
        }
        println!("{} entr(ies), {} ok", results.len(), results.iter().filter(|r| r.ok).count());
    }
    let bad = results.iter().filter(|r| !r.ok).count();
    if bad == 0 {
        Ok(())
    } else {
        Err(format!("bug base replay: {bad} entr(ies) failed"))
    }
}

fn cmd_sim(flags: &HashMap<String, String>) -> CliResult<()> {
    use ftpde::simharness::prelude::*;
    let format = get_format(flags, &["text", "json"], "text")?;

    if let Some(path) = flags.get("replay-bug-base") {
        if path == "true" {
            return Err("--replay-bug-base needs a file argument".into());
        }
        return sim_replay_bug_base(path, format);
    }

    let seeds: Vec<u64> = if let Some(spec) = flags.get("seeds") {
        parse_seed_range(spec)?.collect()
    } else if flags.contains_key("seed") {
        vec![get_f64(flags, "seed", None)? as u64]
    } else {
        return Err("missing required flag --seed <N> or --seeds <A..B>".into());
    };
    let bug = match flags.get("bug").map(String::as_str) {
        None | Some("none") => BugMode::None,
        Some("serve-corrupt-data") => BugMode::ServeCorruptData,
        Some(other) => {
            return Err(format!("unknown bug {other:?} (expected none, serve-corrupt-data)"))
        }
    };
    let shrink = flags.contains_key("shrink");

    let mut outcomes = Vec::with_capacity(seeds.len());
    let mut shrunk = Vec::new();
    for &seed in &seeds {
        let case = SimCase::derive(seed).with_bug(bug);
        let outcome = run_case(&case);
        if format == "text" {
            println!("{}", outcome.headline());
            if outcome.failing() {
                print!("{}", outcome.report.render());
            }
        }
        if outcome.failing() && shrink {
            if let Some(min) = shrink_case(&case) {
                if format == "text" {
                    println!(
                        "  shrunk {} -> {} event(s) in {} run(s) [{}]: {}",
                        min.original_events,
                        min.case.schedule.len(),
                        min.tested,
                        min.code.as_str(),
                        serde_json::to_string(&min.case.schedule)
                            .unwrap_or_else(|_| "<unserializable>".to_string()),
                    );
                }
                shrunk.push(min);
            }
        }
        outcomes.push(outcome);
    }

    let failing = outcomes.iter().filter(|o| o.failing()).count() as u64;
    if let Some(path) = flags.get("bug-base") {
        if path == "true" {
            return Err("--bug-base needs a file argument".into());
        }
        let entries: Vec<BugEntry> = shrunk
            .iter()
            .map(|min| BugEntry {
                seed: min.case.seed,
                code: min.code.as_str().to_string(),
                status: EntryStatus::Quarantined,
                note: format!(
                    "recorded by `ftpde sim --shrink` from seed {} ({} -> {} event(s))",
                    min.case.seed,
                    min.original_events,
                    min.case.schedule.len()
                ),
                case: min.case.clone(),
            })
            .collect();
        let added = append_bug_entries(path, entries)?;
        if format == "text" {
            println!("bug base {path}: {added} new entr(ies)");
        }
    }

    if format == "json" {
        let doc = SimDoc {
            schema: "ftpde-sim-report".to_string(),
            seeds: seeds.clone(),
            failing,
            outcomes,
            shrunk,
        };
        let json = serde_json::to_string(&doc)
            .map_err(|e| format!("sim report failed to serialize: {e:?}"))?;
        println!("{json}");
    } else {
        let warn_only = outcomes.iter().filter(|o| !o.failing() && !o.report.is_clean()).count();
        println!(
            "{} seed(s): {} clean, {warn_only} warn-only, {failing} failing",
            seeds.len(),
            seeds.len() - warn_only - failing as usize,
        );
    }
    if failing == 0 {
        Ok(())
    } else {
        Err(format!("sim found {failing} failing seed(s)"))
    }
}

/// Builds and starts the telemetry server from `serve-metrics` flags:
/// bind port, optional disk-store health source, flight-recorder dump
/// directory and latency budget. Factored out of [`cmd_serve_metrics`]
/// so tests can start (and drop) the server without parking.
fn start_serve(flags: &HashMap<String, String>) -> CliResult<obs::ServerHandle> {
    let port = get_f64(flags, "port", Some(f64::from(obs::serve::DEFAULT_PORT)))? as u16;
    if let Some(dir) = flags.get("flight-dir") {
        if dir == "true" {
            return Err("--flight-dir needs a directory argument".into());
        }
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        obs::flight::global().set_dump_dir(Some(dir.into()));
    }
    if flags.contains_key("budget-ms") {
        let ms = get_f64(flags, "budget-ms", None)?;
        if ms <= 0.0 {
            return Err("--budget-ms must be > 0".into());
        }
        obs::flight::global().set_latency_budget_us((ms * 1000.0) as u64);
    }
    let health = match flags.get("store") {
        Some(dir) if dir == "true" => return Err("--store needs a directory argument".into()),
        Some(dir) => {
            let dir = dir.clone();
            // Re-verify on every /healthz hit so corruption that appears
            // after startup flips the status without a restart.
            let source: obs::serve::HealthSource =
                Box::new(move || match ftpde::store::verify(&dir) {
                    Ok(report) => {
                        let detail = serde_json::to_string(&report)
                            .ok()
                            .and_then(|s| serde_json::from_str::<serde::Value>(&s).ok())
                            .unwrap_or(serde::Value::Null);
                        (report.corrupt == 0, detail)
                    }
                    Err(e) => {
                        (false, serde::Value::Str(format!("cannot read store at {dir}: {e}")))
                    }
                });
            Some(source)
        }
        None => None,
    };
    obs::serve_with(obs::global(), obs::ServeOptions { port, health })
        .map_err(|e| format!("cannot bind telemetry server on port {port}: {e}"))
}

fn cmd_serve_metrics(flags: &HashMap<String, String>) -> CliResult<()> {
    let duration_s = get_f64(flags, "duration-s", Some(0.0))?;
    let srv = start_serve(flags)?;
    println!("serving telemetry on http://{}/ — /metrics /healthz /flight /queries", srv.addr());
    if duration_s > 0.0 {
        std::thread::sleep(std::time::Duration::from_secs_f64(duration_s));
        srv.stop();
        Ok(())
    } else {
        // Park forever: the server thread does the work.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
}

/// Reads one `ftpde top` frame's worth of endpoint payloads and renders
/// the dashboard.
fn top_frame(addr: std::net::SocketAddr) -> CliResult<String> {
    let get = |path: &str| -> CliResult<String> {
        let (status, body) = obs::serve::http_get(addr, path).map_err(|e| {
            format!("cannot reach http://{addr}{path}: {e} (is `ftpde serve-metrics` running?)")
        })?;
        if status != 200 {
            return Err(format!("http://{addr}{path}: HTTP {status}"));
        }
        Ok(body)
    };
    render_top(&addr.to_string(), &get("/healthz")?, &get("/queries")?, &get("/flight")?)
}

/// Renders one dashboard frame from the `/healthz`, `/queries` and
/// `/flight` payloads. Pure so tests can feed synthetic JSON.
fn render_top(addr: &str, healthz: &str, queries: &str, flight: &str) -> CliResult<String> {
    let health: serde::Value =
        serde_json::from_str(healthz).map_err(|e| format!("/healthz is not JSON: {e:?}"))?;
    let snap: obs::ProgressSnapshot =
        serde_json::from_str(queries).map_err(|e| format!("/queries is not JSON: {e:?}"))?;
    let fl: serde::Value =
        serde_json::from_str(flight).map_err(|e| format!("/flight is not JSON: {e:?}"))?;

    let status = health.get("status").and_then(serde::Value::as_str).unwrap_or("?");
    let uptime = health.get("uptime_s").and_then(serde::Value::as_f64).unwrap_or(0.0);
    let corrupt = health.get("corrupt_segments").and_then(serde::Value::as_u64).unwrap_or(0);
    let mut out = format!(
        "ftpde top — {addr} — {status} — up {uptime:.0}s — {} running, {corrupt} corrupt\n\n",
        snap.running()
    );

    out.push_str(&format!(
        "{:>4}  {:<9} {:>7} {:>5} {:>5} {:>9} {:>8} {:>7} {:>6}  LABEL\n",
        "ID", "STATE", "STAGES", "RETR", "RSTRT", "MAT MB", "ELAPSED", "PRED", "DRIFT"
    ));
    if snap.queries.is_empty() {
        out.push_str("  (no queries yet)\n");
    }
    for q in &snap.queries {
        let pred = q.predicted_s.map_or_else(|| "-".to_string(), |p| format!("{p:.1}s"));
        let drift = match q.predicted_s {
            Some(p) if p > 0.0 => format!("{:+.0}%", (q.elapsed_s - p) / p * 100.0),
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:>4}  {:<9} {:>7} {:>5} {:>5} {:>9.1} {:>7.1}s {:>7} {:>6}  {}\n",
            q.id,
            q.state,
            format!("{}/{}", q.stages_done, q.stages_total),
            q.retries,
            q.restarts,
            q.bytes_materialized as f64 / 1e6,
            q.elapsed_s,
            pred,
            drift,
            q.label
        ));
    }

    // Store line: the /healthz store detail when `serve-metrics --store`
    // is wired (a serialized verify report); omitted otherwise.
    if let Some(store) = health.get("store") {
        let segments = store.get("segments").and_then(serde::Value::as_array).map(<[_]>::len);
        let stats = store.get("stats");
        let bytes = stats
            .and_then(|s| s.get("physical_bytes_written"))
            .and_then(serde::Value::as_u64)
            .unwrap_or(0);
        let store_corrupt = store.get("corrupt").and_then(serde::Value::as_u64).unwrap_or(0);
        if let Some(segments) = segments {
            let mut line = format!(
                "\nstore: {segments} segment(s), {:.1} MB written, {store_corrupt} corrupt",
                bytes as f64 / 1e6
            );
            if let Some(w) = stats
                .and_then(|s| s.get("write_bytes_per_s"))
                .and_then(serde::Value::as_f64)
                .filter(|w| w.is_finite() && *w > 0.0)
            {
                line.push_str(&format!(", write {:.1} MB/s", w / 1e6));
            }
            line.push('\n');
            out.push_str(&line);
        }
    }

    let cap = fl.get("capacity").and_then(serde::Value::as_u64).unwrap_or(0);
    let recorded = fl.get("recorded").and_then(serde::Value::as_u64).unwrap_or(0);
    let dumps = fl.get("dumps").and_then(serde::Value::as_u64).unwrap_or(0);
    out.push_str(&format!(
        "\nflight: {recorded} recorded (ring capacity {cap}), {dumps} dump(s)\n"
    ));
    let anomalies: Vec<String> = fl
        .get("events")
        .and_then(serde::Value::as_array)
        .map(|events| {
            events
                .iter()
                .filter_map(|e| {
                    let name = e.get("name").and_then(serde::Value::as_str)?;
                    if !obs::flight::DUMP_TRIGGERS.contains(&name) {
                        return None;
                    }
                    let ts = e.get("ts_us").and_then(serde::Value::as_u64).unwrap_or(0);
                    Some(format!("{name} @{:.3}s", ts as f64 / 1e6))
                })
                .collect()
        })
        .unwrap_or_default();
    if !anomalies.is_empty() {
        let recent: Vec<&str> = anomalies.iter().rev().take(5).rev().map(String::as_str).collect();
        out.push_str(&format!("  anomalies: {}\n", recent.join(", ")));
    }
    Ok(out)
}

fn cmd_top(flags: &HashMap<String, String>) -> CliResult<()> {
    use std::io::Write as _;
    let default_addr = format!("127.0.0.1:{}", obs::serve::DEFAULT_PORT);
    let addr_s = flags.get("addr").map_or(default_addr.as_str(), String::as_str);
    let addr: std::net::SocketAddr =
        addr_s.parse().map_err(|_| format!("--addr: not a host:port address: {addr_s:?}"))?;
    let interval_ms = get_f64(flags, "interval-ms", Some(1000.0))?;
    if interval_ms <= 0.0 {
        return Err("--interval-ms must be > 0".into());
    }
    // 0 = poll until interrupted; tests pass --iterations 1.
    let iterations = get_f64(flags, "iterations", Some(0.0))? as u64;
    let clear = !flags.contains_key("no-clear");
    let mut shown = 0u64;
    loop {
        let frame = top_frame(addr)?;
        if clear {
            // ANSI: clear screen, home cursor.
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame}");
        let _ = std::io::stdout().flush();
        shown += 1;
        if iterations > 0 && shown >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms as u64));
    }
}

/// `ftpde bench` — run the canonical suite or compare two result
/// documents. Receives the raw arguments after `bench` (not the flag
/// map) because `--compare` takes two positional paths.
fn cmd_bench(rest: &[String]) -> CliResult<()> {
    if rest.first().map(String::as_str) == Some("--compare") {
        let take_path = |i: usize, which: &str| -> CliResult<&String> {
            rest.get(i)
                .filter(|p| !p.starts_with("--"))
                .ok_or_else(|| format!("--compare needs <old.json> <new.json>; missing {which}"))
        };
        let old_path = take_path(1, "the old (baseline) document")?;
        let new_path = take_path(2, "the new document")?;
        let mut tail = vec!["bench".to_string()];
        tail.extend_from_slice(&rest[3..]);
        let (_, flags) = parse(&tail).ok_or("malformed flags after --compare")?;
        let tolerance = get_f64(&flags, "tolerance", Some(25.0))?;
        return bench_compare(old_path, new_path, tolerance);
    }
    let mut full = vec!["bench".to_string()];
    full.extend_from_slice(rest);
    let (_, flags) = parse(&full).ok_or("malformed bench flags")?;
    let mut opts = if flags.contains_key("quick") {
        suite::SuiteOptions::quick()
    } else {
        suite::SuiteOptions::default()
    };
    if flags.contains_key("repeats") {
        opts.repeats = get_f64(&flags, "repeats", None)? as usize;
    }
    if flags.contains_key("warmup") {
        opts.warmup = get_f64(&flags, "warmup", None)? as usize;
    }
    if flags.contains_key("seed") {
        opts.seed = get_f64(&flags, "seed", None)? as u64;
    }
    if opts.repeats == 0 {
        return Err("--repeats must be ≥ 1".into());
    }
    let out = std::path::Path::new(flags.get("out").map_or(".", String::as_str));
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;

    let engine = suite::run_engine_suite(&opts);
    let path = out.join("BENCH_engine.json");
    write_json(&path, &engine)?;
    println!(
        "wrote {} ({} cases, {} store points, instrumentation overhead {:.2}%)",
        path.display(),
        engine.cases.len(),
        engine.store.len(),
        engine.overhead_pct
    );

    let search = suite::run_search_suite(&opts);
    let path = out.join("BENCH_search.json");
    write_json(&path, &search)?;
    println!("wrote {} ({} cases)", path.display(), search.cases.len());
    Ok(())
}

/// Serializes `doc` as pretty JSON with a trailing newline (so committed
/// baselines are diff- and editor-friendly).
fn write_json<T: serde::Serialize>(path: &std::path::Path, doc: &T) -> CliResult<()> {
    let mut text = serde_json::to_string_pretty(doc)
        .map_err(|e| format!("cannot serialize {}: {e}", path.display()))?;
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// `ftpde bench --compare`: diff two BENCH documents, print every
/// regression, and fail when any exceed the tolerance.
fn bench_compare(old_path: &str, new_path: &str, tolerance: f64) -> CliResult<()> {
    let read = |path: &str| -> CliResult<suite::BenchDoc> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        suite::parse_doc(&text).map_err(|e| format!("{path}: {e}"))
    };
    let old = read(old_path)?;
    let new = read(new_path)?;
    let regressions = suite::compare(&old, &new, tolerance)?;
    if regressions.is_empty() {
        println!("OK: no regressions beyond {tolerance}% tolerance ({old_path} -> {new_path})");
        Ok(())
    } else {
        for r in &regressions {
            println!("{}", r.render());
        }
        Err(format!(
            "{} regression(s) beyond {tolerance}% tolerance ({old_path} -> {new_path})",
            regressions.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn parse_splits_command_and_flags() {
        let args: Vec<String> =
            ["plan", "--query", "Q5", "--sf", "10"].iter().map(ToString::to_string).collect();
        let (cmd, f) = parse(&args).unwrap();
        assert_eq!(cmd, "plan");
        assert_eq!(f["query"], "Q5");
        assert_eq!(f["sf"], "10");
    }

    #[test]
    fn parse_rejects_malformed_flags() {
        let args: Vec<String> = ["plan", "query"].iter().map(ToString::to_string).collect();
        assert!(parse(&args).is_none());
        assert!(parse(&[]).is_none());
    }

    #[test]
    fn parse_accepts_boolean_flags() {
        let args: Vec<String> =
            ["lint", "--all", "--format", "json"].iter().map(ToString::to_string).collect();
        let (cmd, f) = parse(&args).unwrap();
        assert_eq!(cmd, "lint");
        assert_eq!(f["all"], "true");
        assert_eq!(f["format"], "json");
        // A trailing valueless flag parses too.
        let args: Vec<String> = ["lint", "--all"].iter().map(ToString::to_string).collect();
        assert_eq!(parse(&args).unwrap().1["all"], "true");
    }

    #[test]
    fn query_lookup_is_case_insensitive() {
        assert_eq!(get_query(&flags(&[("query", "q1c")])).unwrap(), Query::Q1C);
        assert!(get_query(&flags(&[("query", "Q9")])).is_err());
        assert!(get_query(&flags(&[])).is_err());
    }

    #[test]
    fn cluster_validation() {
        assert!(get_cluster(&flags(&[("mtbf", "3600")])).is_ok());
        assert!(get_cluster(&flags(&[])).is_err()); // mtbf required
        assert!(get_cluster(&flags(&[("mtbf", "-1")])).is_err());
        assert!(get_cluster(&flags(&[("mtbf", "x")])).is_err());
    }

    #[test]
    fn commands_run_end_to_end() {
        let f = flags(&[("query", "Q3"), ("sf", "1"), ("mtbf", "600")]);
        cmd_plan(&f).unwrap();
        let f = flags(&[("query", "Q1"), ("sf", "1"), ("mtbf", "600"), ("traces", "2")]);
        cmd_simulate(&f).unwrap();
        let f = flags(&[("runtime-min", "30"), ("mtbf", "3600")]);
        cmd_success(&f).unwrap();
        let f = flags(&[("query", "Q5"), ("sf", "1"), ("mtbf", "600")]);
        cmd_dot(&f).unwrap();
    }

    #[test]
    fn lint_accepts_builtins_and_rejects_corruption() {
        // Every built-in plan lints clean (Errors would return Err).
        cmd_lint(&flags(&[("all", "true"), ("sf", "1")])).unwrap();
        cmd_lint(&flags(&[("query", "Q3"), ("sf", "1"), ("format", "json")])).unwrap();
        // Mode is mandatory, and formats are validated.
        assert!(cmd_lint(&flags(&[])).is_err());
        assert!(cmd_lint(&flags(&[("all", "true"), ("format", "yaml")])).is_err());
        assert!(cmd_lint(&flags(&[("plan", "/nonexistent/plan.json")])).is_err());

        // A valid serialized plan lints clean through --plan, while one
        // whose edge tables are not mutual inverses fails FT001.
        let dir = std::env::temp_dir().join("ftpde_cli_lint_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        let json = serde_json::to_string(&ftpde::core::dag::figure2_plan()).unwrap();
        std::fs::write(&good, &json).unwrap();
        let gp = good.to_string_lossy().to_string();
        cmd_lint(&flags(&[("plan", gp.as_str())])).unwrap();

        let broken = dir.join("broken.json");
        std::fs::write(&broken, CORRUPTED_PLAN_JSON).unwrap();
        let bp = broken.to_string_lossy().to_string();
        let err = cmd_lint(&flags(&[("plan", bp.as_str())])).unwrap_err();
        assert!(err.contains("error"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A plan whose input table claims a backward edge `1 -> 0` that the
    /// consumer table does not mirror, plus a forward edge `0 -> 1` — the
    /// FT001 structural pass must reject it.
    const CORRUPTED_PLAN_JSON: &str = r#"{
        "ops": [
            {"name": "a", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"},
            {"name": "b", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"}
        ],
        "inputs": [[1], []],
        "consumers": [[], []]
    }"#;

    /// A small prediction-tagged trace, as `simulate_traced` would emit.
    fn calibratable_events() -> Vec<obs::Event> {
        vec![
            obs::Event::instant("plan_estimate", "sim", 0)
                .arg("pred_cost_s", 5.0)
                .arg("pred_runtime_s", 4.0),
            obs::Event::span("stage 0", "sim", 0, 2_000_000)
                .arg("stage", 0u64)
                .arg("pred_run_s", 1.5)
                .arg("pred_mat_s", 0.5)
                .arg("pred_rec_s", 0.0)
                .arg("pred_cost_s", 2.0)
                .arg("dominant", true),
            obs::Event::instant("node_failure", "sim", 500_000)
                .arg("stage", 0u64)
                .arg("node", 1u64)
                .arg("lost_s", 0.5)
                .arg("resumes_at_s", 0.75),
            obs::Event::instant("query_completed", "sim", 5_500_000),
        ]
    }

    #[test]
    fn obs_renders_every_format() {
        let events = calibratable_events();
        let summary = render_obs(&events, "summary").unwrap();
        assert!(summary.contains("Trace summary"));
        assert!(summary.contains("prediction-tagged stages"));
        assert!(summary.contains("trace.span_seconds.sim"));

        let cal = render_obs(&events, "calibration").unwrap();
        assert!(cal.contains("Calibration: predicted vs observed"));
        assert!(cal.contains("rel err"));
        assert!(cal.contains("T_Pt"));

        let prom = render_obs(&events, "prom").unwrap();
        assert!(prom.contains("# TYPE trace_events_sim counter"));
        assert!(prom.contains("calibration_stage_count 1"));

        let json = render_obs(&events, "json").unwrap();
        assert!(json.contains("\"stages\""));
        assert!(json.contains("\"queries\""));

        assert!(render_obs(&events, "nope").is_err());
    }

    #[test]
    fn obs_command_replays_a_jsonl_file() {
        let dir = std::env::temp_dir().join("ftpde_cli_obs_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("run.jsonl");
        obs::export::write_file(&path, &obs::export::to_jsonl(&calibratable_events())).unwrap();
        let p = path.to_string_lossy().to_string();
        for format in ["summary", "calibration", "prom", "json"] {
            cmd_obs(&flags(&[("trace", p.as_str()), ("format", format)])).unwrap();
        }
        // Default format is the summary; missing/garbage traces error.
        cmd_obs(&flags(&[("trace", p.as_str())])).unwrap();
        assert!(cmd_obs(&flags(&[])).is_err());
        assert!(cmd_obs(&flags(&[("trace", "/nonexistent/x.jsonl")])).is_err());
        std::fs::write(&path, "not json\n").unwrap();
        assert!(cmd_obs(&flags(&[("trace", p.as_str())])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_command_inspects_and_verifies() {
        use ftpde::store::{int_row, DiskBackend, StoreBackend};

        let dir = std::env::temp_dir().join("ftpde_cli_store_test");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let disk = DiskBackend::open(&dir).unwrap();
            disk.put(0, 0, vec![int_row(&[1, 2]), int_row(&[3, 4])]);
            disk.put_replicated(1, vec![int_row(&[5, 6])], 4);
        }
        let d = dir.to_string_lossy().to_string();

        // A healthy store inspects and verifies cleanly in both formats.
        cmd_store(&flags(&[("inspect", d.as_str())])).unwrap();
        cmd_store(&flags(&[("inspect", d.as_str()), ("format", "json")])).unwrap();
        cmd_store(&flags(&[("verify", d.as_str())])).unwrap();

        // Mode is mandatory, flags need a directory, formats are checked.
        assert!(cmd_store(&flags(&[])).is_err());
        assert!(cmd_store(&flags(&[("inspect", "true")])).is_err());
        assert!(cmd_store(&flags(&[("inspect", d.as_str()), ("format", "yaml")])).is_err());
        assert!(cmd_store(&flags(&[("inspect", "/nonexistent/store")])).is_err());

        // Flip one payload byte: verify must exit nonzero, inspect still
        // renders (it reports the segment but does not re-checksum it).
        let seg = dir.join("seg-0-0.seg");
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();
        let err = cmd_store(&flags(&[("verify", d.as_str()), ("format", "json")])).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        cmd_store(&flags(&[("inspect", d.as_str())])).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn format_parser_accepts_listed_and_rejects_unknown() {
        assert_eq!(get_format(&flags(&[]), &["text", "json"], "text").unwrap(), "text");
        assert_eq!(
            get_format(&flags(&[("format", "json")]), &["text", "json"], "text").unwrap(),
            "json"
        );
        let err = get_format(&flags(&[("format", "yaml")]), &["text", "json"], "text").unwrap_err();
        assert!(err.contains("yaml") && err.contains("text, json"), "{err}");
    }

    #[test]
    fn mat_config_specs_resolve() {
        let plan = ftpde::core::dag::figure2_plan();
        let cluster = ClusterConfig::new(10, 3600.0, 1.0);
        assert_eq!(get_mat_config("none", &plan, &cluster).unwrap().materialized_count(), 0);
        assert!(get_mat_config("all", &plan, &cluster).unwrap().materialized_count() > 0);
        let best = get_mat_config("best", &plan, &cluster).unwrap();
        assert!(best.len() == plan.len());
        let explicit = get_mat_config("ops:1, 2", &plan, &cluster).unwrap();
        assert_eq!(explicit.materialized_count(), 2);
        assert!(get_mat_config("ops:x", &plan, &cluster).is_err());
        assert!(get_mat_config("nope", &plan, &cluster).is_err());
    }

    #[test]
    fn check_command_verifies_traces() {
        let dir = std::env::temp_dir().join("ftpde_cli_check_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // A real simulated run of Q1 @ SF 1 under the cost-based
        // configuration, replayed against a generated failure trace,
        // must check clean — standalone and against the rebuilt plan.
        let cm = CostModel::xdb_calibrated();
        let plan = Query::Q1.plan(1.0, &cm);
        let cluster = ClusterConfig::new(10, 600.0, 1.0);
        let config = get_mat_config("best", &plan, &cluster).unwrap();
        let opts = SimOptions::default();
        let horizon = suggested_horizon(&plan, &cluster, &opts);
        let trace = FailureTrace::generate(&cluster, horizon, 7);
        let rec = obs::MemoryRecorder::new();
        simulate_traced(&plan, &config, Recovery::FineGrained, &cluster, &trace, &opts, None, &rec);
        let clean = dir.join("clean.jsonl");
        obs::export::write_file(&clean, &obs::export::to_jsonl(&rec.events())).unwrap();
        let p = clean.to_string_lossy().to_string();
        cmd_check(&flags(&[("trace", p.as_str())])).unwrap();
        let planful = [
            ("trace", p.as_str()),
            ("query", "Q1"),
            ("sf", "1"),
            ("mtbf", "600"),
            ("format", "json"),
        ];
        cmd_check(&flags(&planful)).unwrap();

        // Damaging the trace (a duplicated terminal) must exit nonzero.
        let mut damaged_events = rec.events();
        damaged_events.push(obs::Event::instant("query_completed", "sim", u64::MAX / 2));
        let damaged = dir.join("damaged.jsonl");
        obs::export::write_file(&damaged, &obs::export::to_jsonl(&damaged_events)).unwrap();
        let dp = damaged.to_string_lossy().to_string();
        let err = cmd_check(&flags(&[("trace", dp.as_str())])).unwrap_err();
        assert!(err.contains("error"), "{err}");

        // Flag validation: --trace is required, formats and config specs
        // are parsed by the shared helpers.
        assert!(cmd_check(&flags(&[])).is_err());
        assert!(cmd_check(&flags(&[("trace", p.as_str()), ("format", "yaml")])).is_err());
        let bad = [("trace", p.as_str()), ("query", "Q1"), ("config", "nope"), ("mtbf", "600")];
        assert!(cmd_check(&flags(&bad)).is_err());
        assert!(cmd_check(&flags(&[("trace", "/nonexistent/x.jsonl")])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_stats_instants_surface_in_prom_output() {
        let mut events = calibratable_events();
        events.insert(
            events.len() - 1,
            obs::Event::instant("store_stats", "engine", 5_400_000)
                .arg("logical_rows_written", 128u64)
                .arg("physical_bytes_written", 4096u64)
                .arg("segments_committed", 3u64)
                .arg("corrupt_segments", 0u64)
                .arg("write_bytes_per_s", 1.5e6),
        );
        let prom = render_obs(&events, "prom").unwrap();
        assert!(prom.contains("store_write_bytes_per_s 1500000"), "{prom}");
        assert!(prom.contains("store_segments_committed 3"), "{prom}");
        assert!(prom.contains("store_logical_rows_written 128"), "{prom}");
    }

    /// A hand-built one-case engine document: lets the `--compare` CLI
    /// path be tested without paying for a real suite run.
    fn synthetic_engine_doc(p50_us: f64) -> suite::EngineDoc {
        let wall = suite::Stats::of(&[p50_us * 0.9, p50_us, p50_us * 1.1]);
        suite::EngineDoc {
            schema_version: suite::SCHEMA_VERSION,
            suite: suite::ENGINE_SUITE.to_string(),
            seed: 42,
            repeats: 3,
            warmup: 1,
            nodes: 3,
            sf: 0.002,
            host: suite::HostInfo::current(),
            overhead_pct: 1.0,
            cases: vec![suite::EngineCase {
                query: "Q3".to_string(),
                config: "all".to_string(),
                backend: "mem".to_string(),
                failures: false,
                wall_us: wall,
                stages: vec![suite::StageStat { stage: 0, wall_us: wall, retries: 0.0 }],
                node_retries: 0.0,
                query_restarts: 0.0,
                bytes_materialized: 1e6,
            }],
            store: vec![suite::StoreCase {
                backend: "mem".to_string(),
                row_width: 8,
                mb_written: 4.0,
                write_mb_per_s: Some(800.0),
                read_mb_per_s: Some(1200.0),
            }],
        }
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn bench_compare_exits_nonzero_on_an_injected_regression() {
        let dir = std::env::temp_dir().join(format!("ftpde-cli-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = synthetic_engine_doc(1_000_000.0);
        let old = dir.join("old.json");
        write_json(&old, &baseline).unwrap();
        let op = old.to_string_lossy().to_string();

        // Identity passes.
        let new = dir.join("same.json");
        write_json(&new, &baseline).unwrap();
        let np = new.to_string_lossy().to_string();
        cmd_bench(&strings(&["--compare", &op, &np, "--tolerance", "10"])).unwrap();

        // A 2x wall-time slowdown beyond a 25% tolerance fails...
        let slow = dir.join("slow.json");
        write_json(&slow, &synthetic_engine_doc(2_000_000.0)).unwrap();
        let sp = slow.to_string_lossy().to_string();
        let err = cmd_bench(&strings(&["--compare", &op, &sp, "--tolerance", "25"])).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        // ...but passes a tolerance wider than the injected change.
        cmd_bench(&strings(&["--compare", &op, &sp, "--tolerance", "150"])).unwrap();

        // Malformed invocations are flag errors, not panics.
        assert!(cmd_bench(&strings(&["--compare", &op])).is_err());
        assert!(cmd_bench(&strings(&["--compare", &op, "--tolerance"])).is_err());
        assert!(cmd_bench(&strings(&["--compare", &op, &np, "--tolerance", "x"])).is_err());
        assert!(cmd_bench(&strings(&["--compare", "/nonexistent.json", &np])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_metrics_and_top_end_to_end() {
        use ftpde::store::{int_row, DiskBackend, StoreBackend};

        // A healthy disk store for the /healthz health source.
        let dir = std::env::temp_dir().join(format!("ftpde-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let disk = DiskBackend::open(&dir).unwrap();
            disk.put(0, 0, vec![int_row(&[1, 2]), int_row(&[3, 4])]);
        }
        let d = dir.to_string_lossy().to_string();
        let flight_dir = dir.join("flight");
        let fd = flight_dir.to_string_lossy().to_string();

        // Ephemeral port so parallel test runs never collide.
        let srv = start_serve(&flags(&[
            ("port", "0"),
            ("store", d.as_str()),
            ("flight-dir", fd.as_str()),
            ("budget-ms", "30000"),
        ]))
        .unwrap();
        let addr = srv.addr();

        let (status, body) = obs::serve::http_get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        let v: serde::Value = serde_json::from_str(&body).unwrap();
        // The wired store verifies clean and its report lands under "store".
        assert!(v.get("store").and_then(|s| s.get("segments")).is_some(), "{body}");

        // One dashboard frame through the real client path renders the
        // banner, the query table header and the flight line.
        let frame = top_frame(addr).unwrap();
        assert!(frame.contains("ftpde top"), "{frame}");
        assert!(frame.contains("STAGES"), "{frame}");
        assert!(frame.contains("flight:"), "{frame}");
        assert!(frame.contains("store:"), "{frame}");

        // The polling command itself, bounded to one iteration.
        let a = addr.to_string();
        cmd_top(&flags(&[
            ("addr", a.as_str()),
            ("iterations", "1"),
            ("no-clear", "true"),
            ("interval-ms", "10"),
        ]))
        .unwrap();

        drop(srv);

        // Flag validation.
        assert!(start_serve(&flags(&[("port", "0"), ("store", "true")])).is_err());
        assert!(start_serve(&flags(&[("port", "0"), ("flight-dir", "true")])).is_err());
        assert!(start_serve(&flags(&[("port", "0"), ("budget-ms", "-1")])).is_err());
        assert!(cmd_top(&flags(&[("addr", "not-an-addr")])).is_err());
        assert!(cmd_top(&flags(&[("addr", a.as_str()), ("interval-ms", "0")])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn top_reports_unreachable_endpoints() {
        // A bound-then-dropped listener yields a port nobody serves.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let a = addr.to_string();
        let err = cmd_top(&flags(&[("addr", a.as_str()), ("iterations", "1")])).unwrap_err();
        assert!(err.contains("serve-metrics"), "{err}");
    }

    #[test]
    fn render_top_formats_synthetic_payloads() {
        let healthz = r#"{
            "status": "degraded", "uptime_s": 42.0, "queries_running": 1,
            "corrupt_segments": 2,
            "flight": {"capacity": 16, "recorded": 3, "dumps": 1},
            "store": {
                "dir": "/tmp/s", "corrupt": 2,
                "stats": {"physical_bytes_written": 2500000, "write_bytes_per_s": 1500000.0},
                "segments": [{}, {}, {}], "orphans": []
            }
        }"#;
        let queries = r#"{"queries": [
            {"id": 1, "label": "sink ⋈", "state": "running", "stages_done": 2,
             "stages_total": 4, "retries": 1, "restarts": 0,
             "bytes_materialized": 12500000, "rows_materialized": 100,
             "segments_corrupt": 2, "elapsed_s": 3.2, "predicted_s": 4.0},
            {"id": 2, "label": "agg", "state": "completed", "stages_done": 1,
             "stages_total": 1, "retries": 0, "restarts": 0,
             "bytes_materialized": 0, "rows_materialized": 0,
             "segments_corrupt": 0, "elapsed_s": 0.5, "predicted_s": null}
        ]}"#;
        let flight = r#"{"capacity": 16, "recorded": 3, "dumps": 1, "events": [
            {"name": "materialize", "cat": "engine", "phase": "Span",
             "ts_us": 100, "dur_us": 50, "pid": 0, "tid": 0, "args": []},
            {"name": "segment_corrupt", "cat": "engine", "phase": "Instant",
             "ts_us": 12345678, "dur_us": 0, "pid": 0, "tid": 1, "args": []}
        ]}"#;

        let frame = render_top("127.0.0.1:9188", healthz, queries, flight).unwrap();
        assert!(frame.contains("degraded"), "{frame}");
        assert!(frame.contains("1 running, 2 corrupt"), "{frame}");
        assert!(frame.contains("2/4"), "{frame}");
        // 12.5 MB materialized, -20% prediction drift for query 1.
        assert!(frame.contains("12.5"), "{frame}");
        assert!(frame.contains("-20%"), "{frame}");
        // No prediction for query 2 renders as dashes.
        assert!(frame.contains("agg"), "{frame}");
        // Store summary from the verify report.
        assert!(frame.contains("store: 3 segment(s), 2.5 MB written, 2 corrupt"), "{frame}");
        assert!(frame.contains("write 1.5 MB/s"), "{frame}");
        // Flight ring and the anomaly tail (non-trigger events excluded).
        assert!(frame.contains("flight: 3 recorded (ring capacity 16), 1 dump(s)"), "{frame}");
        assert!(frame.contains("anomalies: segment_corrupt @12.346s"), "{frame}");
        assert!(!frame.contains("materialize @"), "{frame}");

        // Garbage payloads are errors, not panics.
        assert!(render_top("a", "nope", queries, flight).is_err());
        assert!(render_top("a", healthz, "nope", flight).is_err());
        assert!(render_top("a", healthz, queries, "nope").is_err());

        // An empty dashboard still renders.
        let empty = render_top(
            "a",
            r#"{"status": "ok", "uptime_s": 0.0, "queries_running": 0,
                "corrupt_segments": 0, "flight": {"capacity": 16, "recorded": 0, "dumps": 0},
                "store": null}"#,
            r#"{"queries": []}"#,
            r#"{"capacity": 16, "recorded": 0, "dumps": 0, "events": []}"#,
        )
        .unwrap();
        assert!(empty.contains("(no queries yet)"), "{empty}");
        assert!(!empty.contains("anomalies"), "{empty}");
    }

    #[test]
    fn bench_compare_rejects_non_bench_documents() {
        let dir = std::env::temp_dir().join(format!("ftpde-cli-bench-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"suite\": \"something-else\"}\n").unwrap();
        let bp = bad.to_string_lossy().to_string();
        let err = cmd_bench(&strings(&["--compare", &bp, &bp])).unwrap_err();
        assert!(err.contains("not a BENCH document"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
