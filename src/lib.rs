//! # ftpde — Cost-based Fault-tolerance for Parallel Data Processing
//!
//! A full Rust reproduction of *"Cost-based Fault-tolerance for Parallel
//! Data Processing"* (Salama, Binnig, Kraska, Zamanian — SIGMOD 2015):
//! given a DAG-structured parallel execution plan and a cluster's
//! reliability statistics (MTBF, MTTR), select the subset of intermediate
//! results to materialize so that the query's total runtime **under
//! mid-query failures** is minimized — beating both the Hadoop-style
//! "materialize everything" and the Spark/parallel-DB-style "materialize
//! nothing" extremes across query sizes and cluster setups.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] | the paper's contribution: plan DAGs, materialization configurations, collapsed plans, the failure cost model (Eq. 1–8), `findBestFTPlan` (Listing 1) and the pruning rules (§4) |
//! | [`cluster`] | failure model: MTBF/MTTR configs, exponential failure traces, Poisson success analytics (Figure 1) |
//! | [`optimizer`] | join-order enumeration: connected-subgraph DP, k-best plans, physical costing |
//! | [`tpch`] | the TPC-H workload: schema, partitioning, queries Q1/Q3/Q5/Q1C/Q2C, calibrated cost model, row generator |
//! | [`sim`] | discrete-event cluster simulator executing fault-tolerant plans against failure traces under all four schemes |
//! | [`engine`] | in-process partition-parallel execution engine with real tuples, failure injection and recovery |
//! | [`store`] | durable, pluggable checkpoint storage: in-memory and on-disk backends with CRC-checked segments, an atomic manifest and crash recovery |
//! | [`obs`] | observability: event recorder, metrics registry, JSONL / Chrome-trace exporters used by the search, simulator and engine |
//! | [`analysis`] | static analysis: the coded plan linter (`FT001`…), collapsed-plan and cost-model verifiers, pruning-soundness oracle |
//! | [`simharness`] | deterministic whole-system simulation: seeded workloads and fault schedules driven through the real engine, oracle checks (`FT301`…), schedule shrinking and the committed bug base |
//! | [`mod@bench`] | experiment harnesses reproducing the paper's tables and figures, plus the canonical `ftpde bench` suite and its regression comparator |
//!
//! ## Quickstart
//!
//! ```
//! use ftpde::core::prelude::*;
//!
//! // An analytical query: scan -> join -> join -> aggregate.
//! let mut b = PlanDag::builder();
//! let scan = b.bound_pipelined("scan", 120.0, 500.0, &[]).unwrap();
//! let j1 = b.free("join1", 300.0, 15.0, &[scan]).unwrap();
//! let j2 = b.free("join2", 250.0, 80.0, &[j1]).unwrap();
//! let _agg = b.bound_pipelined("agg", 30.0, 0.5, &[j2]).unwrap();
//! let plan = b.build().unwrap();
//!
//! // On a flaky cluster, checkpoint the cheap intermediate...
//! let flaky = CostParams::new(900.0, 1.0);
//! let (best, _) =
//!     find_best_ft_plan(std::slice::from_ref(&plan), &flaky, &PruneOptions::default()).unwrap();
//! assert!(best.config.materializes(j1));
//!
//! // ...on a reliable one, materialize nothing.
//! let reliable = CostParams::new(1e9, 1.0);
//! let (best, _) =
//!     find_best_ft_plan(std::slice::from_ref(&plan), &reliable, &PruneOptions::default()).unwrap();
//! assert_eq!(best.config.materialized_count(), 0);
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and the
//! `ftpde-bench` crate for the harnesses that regenerate every table and
//! figure of the paper's evaluation.

pub use ftpde_analysis as analysis;
pub use ftpde_bench as bench;
pub use ftpde_cluster as cluster;
pub use ftpde_core as core;
pub use ftpde_engine as engine;
pub use ftpde_obs as obs;
pub use ftpde_optimizer as optimizer;
pub use ftpde_sim as sim;
pub use ftpde_simharness as simharness;
pub use ftpde_store as store;
pub use ftpde_tpch as tpch;
